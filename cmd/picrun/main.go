// Command picrun executes a single plasma simulation — traditional PIC,
// DL-based PIC with a trained model bundle, or the learning-free oracle
// cycle — and reports the physics diagnostics: growth rate against
// linear theory, energy variation, momentum drift, and optional ASCII
// phase-space / time-series plots and CSV output.
//
// Examples:
//
//	picrun -steps 200                          # paper two-stream setup
//	picrun -v0 0.4 -vth 0 -steps 200 -phase    # cold-beam run
//	picrun -method oracle -steps 200           # DL cycle, exact fields
//	picrun -method dl -model solver.dlpic      # DL cycle, trained net
//	picrun -csv run.csv -plot                  # export + terminal plots
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dlpic/internal/ascii"
	"dlpic/internal/core"
	"dlpic/internal/diag"
	"dlpic/internal/interp"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/theory"
)

func main() {
	var (
		method  = flag.String("method", "traditional", "field method: traditional | oracle | dl")
		model   = flag.String("model", "", "model bundle path (required for -method dl)")
		steps   = flag.Int("steps", 200, "number of PIC steps")
		cells   = flag.Int("cells", 64, "grid cells")
		ppc     = flag.Int("ppc", 1000, "particles per cell")
		v0      = flag.Float64("v0", 0.2, "beam drift speed")
		vth     = flag.Float64("vth", 0.025, "beam thermal speed")
		dt      = flag.Float64("dt", 0.2, "time step")
		seed    = flag.Uint64("seed", 1, "random seed")
		solver  = flag.String("solver", "spectral", "Poisson solver: spectral | spectral-fd | cg | sor")
		scheme  = flag.String("scheme", "CIC", "interpolation: NGP | CIC | TSC")
		quiet   = flag.Bool("quiet-start", false, "deterministic quiet start")
		perturb = flag.Float64("perturb", 0, "seeded mode-1 position perturbation amplitude (fraction of L)")
		ecGath  = flag.Bool("energy-conserving", false, "energy-conserving gather variant")
		csvPath = flag.String("csv", "", "write diagnostics CSV to this path")
		plot    = flag.Bool("plot", false, "print ASCII diagnostics charts")
		phase   = flag.Bool("phase", false, "print final phase space")
	)
	flag.Parse()
	if err := run(runOpts{
		method: *method, model: *model, steps: *steps, cells: *cells, ppc: *ppc,
		v0: *v0, vth: *vth, dt: *dt, seed: *seed, solver: *solver, scheme: *scheme,
		quiet: *quiet, perturb: *perturb, ec: *ecGath,
		csvPath: *csvPath, plot: *plot, phase: *phase,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "picrun:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	method, model, solver, scheme, csvPath string
	steps, cells, ppc                      int
	v0, vth, dt, perturb                   float64
	seed                                   uint64
	quiet, ec, plot, phase                 bool
}

func run(o runOpts) error {
	sch, err := interp.ParseScheme(o.scheme)
	if err != nil {
		return err
	}
	cfg := pic.Default()
	cfg.Cells = o.cells
	cfg.ParticlesPerCell = o.ppc
	cfg.V0 = o.v0
	cfg.Vth = o.vth
	cfg.Dt = o.dt
	cfg.Seed = o.seed
	cfg.Solver = o.solver
	cfg.Scheme = sch
	cfg.QuietStart = o.quiet
	cfg.EnergyConserving = o.ec
	if o.perturb != 0 {
		cfg.PerturbAmp = o.perturb * cfg.Length
		cfg.PerturbMode = 1
	}

	var fieldMethod pic.FieldMethod
	switch o.method {
	case "traditional":
		// nil selects the built-in deposit+Poisson method.
	case "oracle":
		spec := phasespace.DefaultSpec(cfg.Length)
		spec.NX = cfg.Cells
		fieldMethod, err = core.NewOracleSolver(cfg, spec)
		if err != nil {
			return err
		}
	case "dl":
		if o.model == "" {
			return fmt.Errorf("-method dl requires -model")
		}
		fieldMethod, err = core.LoadModelFile(o.model)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown method %q", o.method)
	}

	sim, err := pic.New(cfg, fieldMethod)
	if err != nil {
		return err
	}
	fmt.Printf("method=%s cells=%d particles=%d dt=%g v0=%g vth=%g solver=%s scheme=%s\n",
		sim.Method().Name(), cfg.Cells, cfg.NumParticles(), cfg.Dt, cfg.V0, cfg.Vth, cfg.Solver, cfg.Scheme)

	var rec diag.Recorder
	if err := sim.Run(o.steps, &rec, nil); err != nil {
		return err
	}
	if err := sim.CheckFinite(); err != nil {
		return err
	}

	// Summary physics.
	ts := theory.TwoStream{Wp: cfg.Wp, V0: cfg.V0, Vth: cfg.Vth}
	k1 := 2 * math.Pi / cfg.Length
	rows := [][]string{{"Quantity", "Value"}}
	rows = append(rows, []string{"simulated time", fmt.Sprintf("%.4g", sim.Time())})
	if ts.Unstable(k1) {
		rows = append(rows, []string{"linear theory gamma (mode 1)", fmt.Sprintf("%.4f", ts.GrowthRate(k1))})
		amps, _ := rec.Series("mode")
		times := rec.Times()
		if t0, t1, werr := diag.AutoGrowthWindow(times, amps, 0.02, 0.5); werr == nil {
			if fit, ferr := diag.FitGrowthRate(times, amps, t0, t1); ferr == nil {
				rows = append(rows, []string{"measured gamma (mode 1)",
					fmt.Sprintf("%.4f  (R2=%.3f, window t=[%.1f,%.1f])", fit.Gamma, fit.R2, fit.T0, fit.T1)})
			}
		}
	} else {
		rows = append(rows, []string{"linear theory", "stable configuration (K >= 1)"})
	}
	tot, _ := rec.Series("total")
	mom, _ := rec.Series("momentum")
	rows = append(rows, []string{"max energy variation", fmt.Sprintf("%.3f%%", 100*diag.MaxRelativeVariation(tot))})
	rows = append(rows, []string{"momentum drift", fmt.Sprintf("%.4g", diag.Drift(mom))})
	rows = append(rows, []string{"final beam spread (RMS dv)", fmt.Sprintf("%.4g", diag.VelocitySpread(sim.P.V))})
	fmt.Println(ascii.Table(rows))

	if o.plot {
		times := rec.Times()
		amps, _ := rec.Series("mode")
		fmt.Print(ascii.LineChart([]ascii.Series{{Name: "E1", X: times, Y: amps}},
			70, 14, "Mode-1 field amplitude (log)", true))
		fmt.Println()
		fmt.Print(ascii.LineChart([]ascii.Series{{Name: "total energy", X: times, Y: tot}},
			70, 10, "Total energy", false))
		fmt.Println()
		fmt.Print(ascii.LineChart([]ascii.Series{{Name: "momentum", X: times, Y: mom}},
			70, 10, "Total momentum", false))
	}
	if o.phase {
		vmax := 2.2 * math.Abs(cfg.V0)
		if vmax == 0 {
			vmax = 0.4
		}
		fmt.Print(ascii.PhaseSpace(sim.P.X, sim.P.V, cfg.Length, -vmax, vmax, 64, 20,
			fmt.Sprintf("Electron phase space at t=%.3g", sim.Time())))
	}
	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples)\n", o.csvPath, rec.Len())
	}
	return nil
}
