// Command datagen produces a training corpus for the DL electric-field
// solver by running a sweep of traditional PIC simulations and capturing
// (phase-space histogram, electric field) pairs, as described in the
// paper's §IV-1. The corpus is written as a single binary file consumed
// by cmd/train.
//
// Examples:
//
//	datagen -out corpus.ds                       # scaled default sweep
//	datagen -out corpus.ds -paper                # the 40,000-sample corpus
//	datagen -out corpus.ds -v0s 0.1,0.2 -vths 0,0.01 -repeats 3
package main

import (
	"flag"
	"fmt"
	"os"

	"dlpic/internal/cliutil"
	"dlpic/internal/dataset"
	"dlpic/internal/interp"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
)

func main() {
	var (
		out     = flag.String("out", "corpus.ds", "output dataset path")
		paper   = flag.Bool("paper", false, "paper-sized sweep (20 combos x 10 repeats x 200 steps, 1000 ppc)")
		v0s     = flag.String("v0s", "", "comma-separated beam speeds (overrides scale default)")
		vths    = flag.String("vths", "", "comma-separated thermal speeds (overrides scale default)")
		repeats = flag.Int("repeats", 0, "experiments per combination (0 = scale default)")
		steps   = flag.Int("steps", 0, "steps per experiment (0 = scale default)")
		every   = flag.Int("every", 0, "sample every N steps (0 = scale default)")
		ppc     = flag.Int("ppc", 0, "particles per cell (0 = scale default)")
		nv      = flag.Int("nv", 64, "phase-space velocity bins")
		binning = flag.String("binning", "NGP", "phase-space binning: NGP | CIC")
		seed    = flag.Uint64("seed", 1, "root seed")
		workers = flag.Int("workers", 0, "concurrent scenario runs (0 = GOMAXPROCS); results are bit-identical for any value")
	)
	flag.Parse()
	if err := run(*out, *paper, *v0s, *vths, *repeats, *steps, *every, *ppc, *nv, *binning, *seed, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, paper bool, v0sRaw, vthsRaw string, repeats, steps, every, ppc, nv int, binning string, seed uint64, workers int) error {
	cfg := pic.Default()
	if !paper {
		cfg.ParticlesPerCell = 250
	}
	if ppc > 0 {
		cfg.ParticlesPerCell = ppc
	}
	spec := phasespace.DefaultSpec(cfg.Length)
	spec.NV = nv
	bin, err := interp.ParseScheme(binning)
	if err != nil {
		return err
	}
	spec.Binning = bin

	opts := dataset.GenerateOpts{Base: cfg, Spec: spec, Seed: seed, Workers: workers}
	if paper {
		opts.V0s = []float64{0.05, 0.1, 0.15, 0.18, 0.3}
		opts.Vths = []float64{0.0, 0.001, 0.005, 0.01}
		opts.Repeats, opts.Steps, opts.SampleEvery = 10, 200, 1
	} else {
		opts.V0s = []float64{0.1, 0.15, 0.18, 0.3}
		opts.Vths = []float64{0.0, 0.005}
		opts.Repeats, opts.Steps, opts.SampleEvery = 2, 200, 2
	}
	if v0s, err := cliutil.ParseFloats(v0sRaw); err != nil {
		return err
	} else if v0s != nil {
		opts.V0s = v0s
	}
	if vths, err := cliutil.ParseFloats(vthsRaw); err != nil {
		return err
	} else if vths != nil {
		opts.Vths = vths
	}
	if repeats > 0 {
		opts.Repeats = repeats
	}
	if steps > 0 {
		opts.Steps = steps
	}
	if every > 0 {
		opts.SampleEvery = every
	}
	total := len(opts.V0s) * len(opts.Vths) * opts.Repeats
	fmt.Fprintf(os.Stderr, "datagen: %d runs x %d steps (every %d), %d particles, %dx%d %s bins\n",
		total, opts.Steps, opts.SampleEvery, cfg.NumParticles(), spec.NX, spec.NV, spec.Binning)
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "\rdatagen: %d/%d runs", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
	ds, err := dataset.Generate(opts)
	if err != nil {
		return err
	}
	// Normalization is fitted and stored here so training and inference
	// share the exact transform.
	if err := ds.Normalize(); err != nil {
		return err
	}
	if err := ds.SaveFile(out); err != nil {
		return err
	}
	info, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples, %dx%d inputs -> %d outputs, %.1f MB\n",
		out, ds.N(), ds.Spec.NX, ds.Spec.NV, ds.Cells, float64(info.Size())/1e6)
	return nil
}
