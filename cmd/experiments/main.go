// Command experiments reproduces the paper's evaluation end to end:
// it generates the training corpus with traditional PIC runs, trains the
// MLP and CNN electric-field solvers, and regenerates Table I and
// Figures 4-6, printing paper-vs-measured values and ASCII renderings of
// every figure panel. Series data is also written as CSV for external
// plotting.
//
// Usage:
//
//	experiments [-paper] [-seed N] [-outdir DIR] [-skip-cnn] \
//	            [-table1] [-fig4] [-fig5] [-fig6] [-oracle]
//
// With no experiment flags, everything runs. The default scale trains in
// minutes on one core; -paper selects the full paper-sized configuration
// (40,000 samples, 3x1024 MLP, 1000 particles/cell).
//
// Scan campaigns: -scan runs the scenario grid as a (resumable)
// campaign. -methods picks the field methods compared side by side
// (traditional, mlp, cnn, oracle — one comparison row per
// scenario x method); -journal FILE appends every completed cell to a
// checkpoint journal; -resume FILE continues an interrupted campaign,
// re-running only the missing cells and reproducing the uninterrupted
// results bit-identically (the printed campaign digest matches).
//
// -coordinator ADDR hosts the scan as a distributed campaign: instead
// of the local sweep pool, a coordinator hub listens on ADDR and
// dlpicworker fleets claim, execute and report the cells (requires
// -journal or -resume — the coordinator is the journal's only writer).
// DL methods train locally first, then ship to workers as
// fingerprint-addressed model bundles served from the campaign's
// bundle directory. The digest is bit-identical to a local run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dlpic/internal/ascii"
	"dlpic/internal/batch"
	"dlpic/internal/campaign"
	"dlpic/internal/cliutil"
	"dlpic/internal/diag"
	"dlpic/internal/dist"
	"dlpic/internal/experiments"
	"dlpic/internal/pic"
	"dlpic/internal/sweep"
)

func main() {
	var (
		paper   = flag.Bool("paper", false, "run the full paper-sized configuration")
		tiny    = flag.Bool("tiny", false, "run the seconds-scale smoke configuration")
		seed    = flag.Uint64("seed", 1, "root random seed")
		outdir  = flag.String("outdir", "", "directory for CSV series output (optional)")
		skipCNN = flag.Bool("skip-cnn", false, "skip CNN training (Table I reports MLP only)")
		table1  = flag.Bool("table1", false, "run Table I")
		fig4    = flag.Bool("fig4", false, "run Figure 4 (growth-rate validation)")
		fig5    = flag.Bool("fig5", false, "run Figure 5 (energy/momentum)")
		fig6    = flag.Bool("fig6", false, "run Figure 6 (cold beam)")
		oracle  = flag.Bool("oracle", false, "also run the learning-free oracle ablation")
		load    = flag.String("load-models", "", "load solver bundles from this directory instead of training")
		steps   = flag.Int("steps", 200, "steps per validation run (t = steps*0.2)")
		scan    = flag.Bool("scan", false, "run a concurrent growth-rate campaign over v0 x vth (see -methods, -journal, -resume)")
		scanV0s = flag.String("scan-v0s", "0.1,0.15,0.2,0.25,0.3", "scan beam speeds")
		scanVth = flag.String("scan-vths", "0.005,0.025", "scan thermal speeds")
		scanRep = flag.Int("scan-repeats", 1, "scan repeats per combination")
		scanPPC = flag.Int("scan-ppc", 250, "scan particles per cell (ignored when a DL method is scanned: the trained model fixes it)")
		workers = flag.Int("workers", 0, "concurrent scenario runs (0 = GOMAXPROCS); results are bit-identical for any value")
		trainW  = flag.Int("train-workers", 0, "data-parallel training workers (0 = GOMAXPROCS); trained weights are bit-identical for any value")
		methods = flag.String("methods", "", "comma-separated field methods to compare per scenario (traditional, mlp, cnn, oracle; default traditional)")
		journal = flag.String("journal", "", "append each completed scan cell to this checkpoint journal (JSON lines)")
		resume  = flag.String("resume", "", "resume an interrupted scan campaign from this journal, skipping completed cells")
		bundles = flag.String("bundle-dir", "", "persist and reuse trained model bundles + epoch-granular training checkpoints in this directory, keyed by training fingerprint (default: <journal>.artifacts when -journal/-resume is set; DL methods then resume mid-training and a completed campaign resumes with zero training epochs)")
		batched = flag.Bool("batched", false, "route DL field solves through the shared batched-inference server; without -methods, runs the per-call vs batched A/B verification scan")
		batchN  = flag.Int("batch", 0, "batched-inference flush cap (0 = default)")
		f32     = flag.Bool("f32", false, "run DL field solves in float32 (converted weights, ~half the inference memory traffic); dense stacks (mlp) only — results drift within the nn.MeasureDrift32 bounds, so digests only reproduce against other -f32 runs")
		coord   = flag.String("coordinator", "", "host the -scan campaign's coordinator at this address (host:port) and execute on dlpicworker fleets instead of the local pool (needs -journal or -resume)")
		trainP  = flag.Bool("train-pipeline", false, "overlap minibatch gathers with optimizer steps during training; trained weights are bit-identical with or without it")
	)
	flag.Parse()
	// The campaign flags only act under -scan; reject them otherwise
	// instead of silently running the (hours-long) full suite without
	// journaling or method comparison.
	if !*scan && (*methods != "" || *journal != "" || *resume != "" || *bundles != "" || *coord != "") {
		fmt.Fprintln(os.Stderr, "experiments: -methods/-journal/-resume/-bundle-dir/-coordinator need -scan")
		os.Exit(1)
	}
	if *scan {
		var err error
		if *batched && *methods == "" {
			// The A/B verification scan has no campaign journal; reject
			// checkpoint flags instead of silently dropping them.
			if *journal != "" || *resume != "" || *bundles != "" {
				err = errors.New("-journal/-resume/-bundle-dir need a campaign scan: pass -methods (e.g. -methods mlp -batched)")
			} else {
				err = runBatchedScan(*scanV0s, *scanVth, *scanRep, *steps, *seed, *workers, *batchN, *paper, *load, *trainW, *trainP, *f32)
			}
		} else {
			err = runMethodScan(scanArgs{
				v0s: *scanV0s, vths: *scanVth, repeats: *scanRep, ppc: *scanPPC,
				steps: *steps, seed: *seed, workers: *workers,
				methods: *methods, batched: *batched, batchN: *batchN,
				journal: *journal, resume: *resume, bundleDir: *bundles,
				paper: *paper, load: *load, trainWorkers: *trainW,
				trainPipeline: *trainP, f32: *f32, coordinator: *coord,
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		// -scan composes with the main suite only when suite flags are
		// given explicitly; on its own it is the whole job.
		if !*table1 && !*fig4 && !*fig5 && !*fig6 && !*oracle {
			return
		}
	}
	if err := run(*paper, *tiny, *seed, *outdir, *skipCNN, *table1, *fig4, *fig5, *fig6, *oracle, *steps, *load, *trainW, *trainP, *f32); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// scanArgs bundles the flags of the campaign scan.
type scanArgs struct {
	v0s, vths       string
	repeats, ppc    int
	steps           int
	seed            uint64
	workers         int
	methods         string
	batched         bool
	batchN          int
	journal, resume string
	bundleDir       string
	paper           bool
	load            string
	trainWorkers    int
	trainPipeline   bool
	f32             bool
	coordinator     string
}

// runMethodScan runs the v0 x vth grid as a resumable multi-method
// campaign: every scenario executes once per requested field method,
// the comparison table has one row per scenario x method cell, and a
// journal (if requested) checkpoints each completed cell so -resume
// can pick up an interrupted campaign bit-identically.
func runMethodScan(a scanArgs) error {
	v0s, err := cliutil.ParseFloats(a.v0s)
	if err != nil {
		return err
	}
	vths, err := cliutil.ParseFloats(a.vths)
	if err != nil {
		return err
	}
	if len(v0s) == 0 || len(vths) == 0 {
		return fmt.Errorf("empty scan axes (-scan-v0s %q, -scan-vths %q)", a.v0s, a.vths)
	}
	if a.journal != "" && a.resume != "" {
		return errors.New("-journal and -resume are mutually exclusive (resume appends to the journal it reads)")
	}
	if a.coordinator != "" {
		if a.journal == "" && a.resume == "" {
			return errors.New("-coordinator needs -journal or -resume (the coordinator is the journal's only writer)")
		}
		if a.batched || a.f32 {
			return errors.New("-coordinator executes cells on workers per-call in float64; drop -batched/-f32")
		}
		if a.load != "" {
			return errors.New("-coordinator ships fingerprint-keyed bundles; -load-models bypasses the bundle store (use -bundle-dir instead)")
		}
	}
	raw := a.methods
	if raw == "" {
		raw = experiments.MethodTraditional
	}
	names, needMLP, needCNN, err := experiments.ResolveMethodNames(raw)
	if err != nil {
		return err
	}

	// The journal path (write or resume) also anchors the default
	// artifact directory for trained-model bundles.
	path := a.journal
	if a.resume != "" {
		path = a.resume
	}

	// Model-free campaigns (traditional / oracle) skip corpus generation
	// and training entirely. DL methods get a lazy pipeline provider:
	// the trained model fixes the base configuration (a pure function
	// of the scale, known up front), but corpus generation + training
	// only run when a DL cell actually executes — a resume whose DL
	// cells are all journaled costs nothing. With a journal (or an
	// explicit -bundle-dir), trained solvers persist as
	// fingerprint-keyed bundles: an interrupted campaign resumes
	// mid-training from the epoch checkpoint, and a completed one
	// reloads the bundle with zero training epochs.
	base := pic.Default()
	base.ParticlesPerCell = a.ppc
	var provider experiments.PipelineProvider
	bundleDir := a.bundleDir
	if bundleDir != "" && !needMLP && !needCNN {
		// Reject instead of silently ignoring — nothing would ever be
		// written there (same rule as the other campaign flags).
		return fmt.Errorf("-bundle-dir needs a DL method (mlp, cnn); got -methods %s", raw)
	}
	if bundleDir != "" && a.load != "" {
		// -load-models bypasses training entirely, so the bundle store
		// would never be consulted; reject the contradiction.
		return errors.New("-bundle-dir and -load-models are mutually exclusive (loaded models skip training and bundles)")
	}
	if needMLP || needCNN {
		if bundleDir == "" && path != "" && a.load == "" {
			bundleDir = campaign.ArtifactDir(path)
		}
		pipeOpts := experiments.Options{
			Tiny: !a.paper, Paper: a.paper, Seed: a.seed, Log: os.Stderr,
			SkipCNN: !needCNN, LoadModels: a.load, TrainWorkers: a.trainWorkers,
			BundleDir: bundleDir, TrainPipeline: a.trainPipeline, Inference32: a.f32,
		}
		base = pipeOpts.BaseConfig()
		provider = experiments.NewPipelineProvider(pipeOpts)
	}
	specs, cleanup, err := experiments.MethodsWith(provider, names, experiments.MethodConfig{
		Batched: a.batched, MaxBatch: a.batchN, Inference32: a.f32,
	})
	if err != nil {
		return err
	}
	defer cleanup()

	scenarios := sweep.Grid(base, v0s, vths, a.repeats, a.steps, a.seed)
	cells := len(scenarios) * len(specs)
	fmt.Printf("== Growth-rate campaign: %d scenarios x %d methods = %d cells (%d steps, %d particles each) ==\n",
		len(scenarios), len(specs), cells, a.steps, base.NumParticles())

	// Restored cells show up through the progress offset: a resumed
	// campaign's first progress line already counts them as done.
	if a.resume != "" {
		fmt.Printf("resuming from %s\n", path)
	} else if path != "" {
		fmt.Printf("journaling to %s\n", path)
	}
	if bundleDir != "" {
		fmt.Printf("model bundles: %s\n", bundleDir)
	}
	if a.f32 {
		fmt.Println("float32 inference: on (digest comparable only to other -f32 runs)")
	}

	spec := campaign.Spec{
		Scenarios: scenarios,
		Opts: sweep.Options{
			Workers:  a.workers,
			Methods:  specs,
			Progress: scanProgress("scan"),
		},
	}
	if a.coordinator != "" {
		// Worker churn and injected RPC faults make transient failures
		// expected; give the campaign a real deterministic retry budget.
		// The digest excludes attempt counts, so it still matches a
		// local run's bit for bit.
		spec.Retry = campaign.RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, Seed: a.seed}
	}
	start := time.Now()
	var results []sweep.Result
	switch {
	case a.coordinator != "":
		results, err = runCoordinated(a.coordinator, path, bundleDir, spec, provider, names)
	case a.resume != "":
		results, err = campaign.Resume(path, spec)
	default:
		results, err = campaign.Run(path, spec)
	}
	// A journal-append failure (disk full, unserializable metric) still
	// returns the fully computed result set — print it before
	// surfacing the error, so hours of compute are never discarded.
	if results == nil {
		return err
	}
	journalErr := err
	elapsed := time.Since(start)
	fmt.Println(methodScanTable(results))
	// Per-cell elapsed times overlap under the pool (and are inflated
	// by time-slicing on few cores), so their sum over wall time
	// measures achieved concurrency, not a serial-baseline speedup.
	var sum time.Duration
	for i := range results {
		sum += results[i].Elapsed
	}
	fmt.Printf("campaign wall time %v; per-cell run times sum to %v (%.1fx concurrency)\n",
		elapsed.Round(time.Millisecond), sum.Round(time.Millisecond),
		float64(sum)/float64(elapsed))
	// The digest covers everything but wall-clock timings: an
	// interrupted+resumed campaign must print the same digest as an
	// uninterrupted one (the CI smoke diffs exactly this line).
	fmt.Printf("campaign digest: %s\n\n", campaign.Digest(results))
	if journalErr != nil {
		return journalErr
	}
	return sweep.FirstError(results)
}

// runCoordinated hosts the scan's coordinator hub at addr and blocks
// until remote dlpicworker fleets complete the campaign. DL methods
// resolve eagerly — provider() trains (or reloads a
// fingerprint-matched bundle) before the hub opens for claims — and
// their persisted bundles ship to workers as fingerprint-addressed
// BundleRefs served from bundleDir over GET /bundles/{fp}.
func runCoordinated(addr, journalPath, bundleDir string, spec campaign.Spec,
	provider experiments.PipelineProvider, names []string) ([]sweep.Result, error) {
	var refs []dist.BundleRef
	for _, name := range names {
		if name != experiments.MethodMLP && name != experiments.MethodCNN {
			continue
		}
		p, err := provider()
		if err != nil {
			return nil, err
		}
		bundlePath, ok := p.BundlePaths[name]
		if !ok {
			return nil, fmt.Errorf("distributed method %q has no persisted model bundle to ship (is the bundle directory writable?)", name)
		}
		ref, err := dist.BundleRefFromFile(name, bundlePath)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
	hub := dist.NewHub(dist.Options{Log: os.Stderr, BundleDir: bundleDir})
	mux := http.NewServeMux()
	hub.Register(mux)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coordinator listen: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("coordinator listening on %s\n", ln.Addr())
	return hub.Run("scan", journalPath, spec, refs...)
}

// methodScanTable renders one comparison row per scenario x method cell.
func methodScanTable(results []sweep.Result) string {
	rows := [][]string{{"Scenario", "Method", "Theory gamma", "Fitted gamma", "R2", "Energy var", "Run time"}}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			rows = append(rows, []string{r.Scenario.Name, r.Method, "-", "error: " + r.Err.Error(), "-", "-", "-"})
			continue
		}
		fitted, r2 := "no growth window", "-"
		if r.FitOK {
			fitted = fmt.Sprintf("%.4f", r.Growth.Gamma)
			r2 = fmt.Sprintf("%.3f", r.Growth.R2)
		}
		rows = append(rows, []string{
			r.Scenario.Name,
			r.Method,
			fmt.Sprintf("%.4f", r.TheoryGamma),
			fitted, r2,
			fmt.Sprintf("%.2f%%", 100*r.EnergyVariation),
			r.Elapsed.Round(time.Millisecond).String(),
		})
	}
	return ascii.Table(rows)
}

// scanProgress returns a serialized progress callback labelled by stage.
func scanProgress(stage string) func(done, total int) {
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs", stage, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// runBatchedScan runs the v0 x vth scan with the DL field method twice:
// once on the per-call path (one cloned solver per scenario, Predict1
// every step) and once through the batched inference server (one shared
// network, stacked PredictBatch flushes). It verifies the two result
// sets are bit-identical and reports timings plus batch statistics. The
// scan reuses the trained pipeline's base configuration — the model
// fixes the grid, particle count and normalizer.
func runBatchedScan(v0sRaw, vthsRaw string, repeats, steps int, seed uint64, workers, batchN int, paper bool, load string, trainWorkers int, trainPipeline, f32 bool) error {
	v0s, err := cliutil.ParseFloats(v0sRaw)
	if err != nil {
		return err
	}
	vths, err := cliutil.ParseFloats(vthsRaw)
	if err != nil {
		return err
	}
	if len(v0s) == 0 || len(vths) == 0 {
		return fmt.Errorf("empty scan axes (-scan-v0s %q, -scan-vths %q)", v0sRaw, vthsRaw)
	}
	p, err := experiments.New(experiments.Options{
		Tiny: !paper, Paper: paper, Seed: seed, Log: os.Stderr, SkipCNN: true, LoadModels: load,
		TrainWorkers: trainWorkers, TrainPipeline: trainPipeline, Inference32: f32,
	})
	if err != nil {
		return err
	}
	scenarios := sweep.Grid(p.Cfg, v0s, vths, repeats, steps, seed)
	fmt.Printf("== DL growth-rate scan: %d scenarios x %d steps, %d particles each ==\n",
		len(scenarios), steps, p.Cfg.NumParticles())
	fmt.Printf("solver: %s\n", p.MLP.Net.Summary())
	if f32 {
		fmt.Println("float32 inference: on (both paths)")
	}
	fmt.Println()

	startPC := time.Now()
	perCall := sweep.Run(scenarios, sweep.Options{
		Workers: workers,
		Methods: []sweep.MethodSpec{{Name: "mlp", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			c, err := p.MLP.Clone()
			if err != nil {
				return nil, err
			}
			c.Inference32 = f32
			return c, nil
		}}},
		Progress: scanProgress("per-call"),
	})
	perCallElapsed := time.Since(startPC)
	if err := sweep.FirstError(perCall); err != nil {
		return err
	}

	// The A/B identity holds in either precision: with -f32 both paths
	// run the same converted predictor, whose batch invariance is the
	// same property the float64 server relies on.
	fromSolver := batch.FromNNSolver
	if f32 {
		fromSolver = batch.FromNNSolver32
	}
	bs, err := fromSolver(p.MLP, batchN)
	if err != nil {
		return err
	}
	defer bs.Close()
	startB := time.Now()
	batchedRes := sweep.Run(scenarios, sweep.Options{
		Workers:  workers,
		Methods:  []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}},
		Progress: scanProgress("batched"),
	})
	batchedElapsed := time.Since(startB)
	if err := sweep.FirstError(batchedRes); err != nil {
		return err
	}

	fmt.Println(methodScanTable(batchedRes))
	identical := len(perCall) == len(batchedRes)
	for i := range perCall {
		if !identical || !sameSamples(perCall[i].Rec.Samples, batchedRes[i].Rec.Samples) {
			identical = false
			break
		}
	}
	st := bs.Server.Stats()
	fmt.Printf("per-call %v -> batched %v (%.2fx); %d field solves in %d flushes (avg batch %.1f, max %d)\n",
		perCallElapsed.Round(time.Millisecond), batchedElapsed.Round(time.Millisecond),
		float64(perCallElapsed)/float64(batchedElapsed),
		st.Requests, st.Batches, st.AvgBatch(), st.MaxBatch)
	fmt.Printf("batched results bit-identical to per-call: %v\n\n", identical)
	if !identical {
		return fmt.Errorf("batched scan diverged from the per-call path")
	}
	return nil
}

// sameSamples reports bitwise equality of two diagnostics series.
func sameSamples(a, b []diag.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func run(paper, tiny bool, seed uint64, outdir string, skipCNN, t1, f4, f5, f6, oracle bool, steps int, load string, trainWorkers int, trainPipeline, f32 bool) error {
	// -oracle is additive: it never suppresses the main suite.
	all := !t1 && !f4 && !f5 && !f6
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
	}
	modelDir := ""
	if outdir != "" {
		modelDir = outdir
	}
	if load != "" {
		modelDir = "" // don't overwrite what we are loading
	}
	p, err := experiments.New(experiments.Options{
		Paper: paper, Tiny: tiny, Seed: seed, Log: os.Stderr, SkipCNN: skipCNN,
		ModelDir: modelDir, LoadModels: load, TrainWorkers: trainWorkers,
		TrainPipeline: trainPipeline, Inference32: f32,
	})
	if err != nil {
		return err
	}
	if f32 {
		// The CNN has no float32 path (conv layers are not converted);
		// only the MLP's solves switch precision.
		p.MLP.Inference32 = true
		fmt.Println("float32 MLP inference: on")
	}
	fmt.Printf("DL-PIC experiment harness — %s scale, seed %d\n", scaleName(paper, tiny), seed)
	fmt.Printf("corpus: %d train / %d val / %d test-I samples (%v generation)\n\n",
		p.Train.N(), p.Val.N(), p.TestI.N(), p.GenTime.Round(1e9))

	if all || t1 {
		if err := renderTable1(p); err != nil {
			return err
		}
	}

	var fig4Res *experiments.Fig4Result
	if all || f4 || f5 {
		fig4Res, err = p.Fig4(steps)
		if err != nil {
			return err
		}
	}
	if all || f4 {
		renderFig4(p, fig4Res)
		if outdir != "" {
			if err := writeCSV(filepath.Join(outdir, "fig4_traditional.csv"), &fig4Res.Traditional.Rec); err != nil {
				return err
			}
			if err := writeCSV(filepath.Join(outdir, "fig4_dl.csv"), &fig4Res.DL.Rec); err != nil {
				return err
			}
		}
	}
	if all || f5 {
		renderFig5(fig4Res)
	}
	if all || f6 {
		res, err := p.Fig6(steps)
		if err != nil {
			return err
		}
		renderFig6(res)
		if outdir != "" {
			if err := writeCSV(filepath.Join(outdir, "fig6_traditional.csv"), &res.Traditional.Rec); err != nil {
				return err
			}
			if err := writeCSV(filepath.Join(outdir, "fig6_dl.csv"), &res.DL.Rec); err != nil {
				return err
			}
		}
	}
	if all || oracle {
		res, err := p.OracleRun(steps)
		if err != nil {
			return err
		}
		renderOracle(res)
	}
	return nil
}

func scaleName(paper, tiny bool) string {
	switch {
	case tiny:
		return "tiny"
	case paper:
		return "paper"
	default:
		return "scaled"
	}
}

func writeCSV(path string, rec *diag.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

func renderTable1(p *experiments.Pipeline) error {
	res, err := p.Table1()
	if err != nil {
		return err
	}
	fmt.Println("== Table I: MAE and maximum error of the DL electric-field solver ==")
	fmt.Printf("(test set I: held-out samples from training parameters; set II: %d samples\n", res.SetIISamples)
	fmt.Printf(" from unseen parameters; max |E| in the corpus: measured %.3g, paper ~%.1g)\n\n",
		res.MaxFieldInCorpus, experiments.PaperMaxField)
	fmt.Println(ascii.Table(res.Rows()))
	return nil
}

func renderFig4(p *experiments.Pipeline, res *experiments.Fig4Result) {
	fmt.Println("== Figure 4: two-stream validation (v0 = 0.2, vth = 0.025) ==")
	fmt.Println()
	spec := p.Spec
	fmt.Print(ascii.PhaseSpace(res.Traditional.FinalX, res.Traditional.FinalV,
		spec.L, -0.45, 0.45, 64, 20, "Traditional PIC — electron phase space at t=40"))
	fmt.Println()
	fmt.Print(ascii.PhaseSpace(res.DL.FinalX, res.DL.FinalV,
		spec.L, -0.45, 0.45, 64, 20, "DL-based PIC (MLP) — electron phase space at t=40"))
	fmt.Println()

	ampsT, _ := res.Traditional.Rec.Series("mode")
	ampsD, _ := res.DL.Rec.Series("mode")
	times := res.Traditional.Rec.Times()
	theoryLine := make([]float64, len(times))
	// Anchor the theory slope at the traditional run's fitted intercept.
	anchor := 1e-4
	if res.Traditional.FitOK {
		anchor = math.Exp(res.Traditional.Growth.Intercept)
	}
	for i, tt := range times {
		theoryLine[i] = anchor * math.Exp(res.TheoryGamma*tt)
		if theoryLine[i] > 0.2 {
			theoryLine[i] = 0.2 // clip past saturation for readability
		}
	}
	fmt.Print(ascii.LineChart([]ascii.Series{
		{Name: "traditional", X: times, Y: ampsT},
		{Name: "DL-based", X: times, Y: ampsD},
		{Name: "linear theory", X: times, Y: theoryLine},
	}, 70, 18, "E1 amplitude of the most unstable mode (log scale)", true))
	fmt.Println()

	rows := [][]string{{"Quantity", "Paper", "Measured"}}
	rows = append(rows, []string{"linear theory gamma (cold)", "0.3536", fmt.Sprintf("%.4f", res.TheoryGamma)})
	rows = append(rows, []string{"linear theory gamma (warm corr.)", "-", fmt.Sprintf("%.4f", res.WarmGamma)})
	rows = append(rows, []string{"traditional PIC gamma", "matches theory", fitString(res.Traditional)})
	rows = append(rows, []string{"DL-based PIC gamma", "matches theory", fitString(res.DL)})
	fmt.Println(ascii.Table(rows))
}

func fitString(r *experiments.RunResult) string {
	if !r.FitOK {
		return "no clean growth window"
	}
	return fmt.Sprintf("%.4f (R2=%.3f)", r.Growth.Gamma, r.Growth.R2)
}

func renderFig5(res *experiments.Fig4Result) {
	fmt.Println("== Figure 5: total energy and momentum (v0 = 0.2, vth = 0.025) ==")
	fmt.Println()
	times := res.Traditional.Rec.Times()
	totT, _ := res.Traditional.Rec.Series("total")
	totD, _ := res.DL.Rec.Series("total")
	fmt.Print(ascii.LineChart([]ascii.Series{
		{Name: "traditional", X: times, Y: totT},
		{Name: "DL-based", X: times, Y: totD},
	}, 70, 12, "Total energy", false))
	fmt.Println()
	momT, _ := res.Traditional.Rec.Series("momentum")
	momD, _ := res.DL.Rec.Series("momentum")
	fmt.Print(ascii.LineChart([]ascii.Series{
		{Name: "traditional", X: times, Y: momT},
		{Name: "DL-based", X: times, Y: momD},
	}, 70, 12, "Total momentum", false))
	fmt.Println()
	rows := [][]string{{"Quantity", "Paper", "Measured"}}
	rows = append(rows, []string{"traditional max energy variation", "~2%",
		fmt.Sprintf("%.2f%%", 100*res.Traditional.EnergyVariation)})
	rows = append(rows, []string{"DL-based max energy variation", "~2% (not conserved)",
		fmt.Sprintf("%.2f%%", 100*res.DL.EnergyVariation)})
	rows = append(rows, []string{"traditional momentum drift", "~0 (conserved)",
		fmt.Sprintf("%.3g", res.Traditional.MomentumDrift)})
	rows = append(rows, []string{"DL-based momentum drift", "negative drift",
		fmt.Sprintf("%.3g", res.DL.MomentumDrift)})
	fmt.Println(ascii.Table(rows))
}

func renderFig6(res *experiments.Fig6Result) {
	fmt.Println("== Figure 6: cold-beam stability (v0 = 0.4, vth = 0) ==")
	fmt.Println()
	l := 2 * math.Pi / 3.06
	fmt.Print(ascii.PhaseSpace(res.Traditional.FinalX, res.Traditional.FinalV,
		l, -0.6, 0.6, 64, 20, "Traditional PIC — phase space at t=40 (cold-beam ripples)"))
	fmt.Println()
	fmt.Print(ascii.PhaseSpace(res.DL.FinalX, res.DL.FinalV,
		l, -0.6, 0.6, 64, 20, "DL-based PIC (MLP) — phase space at t=40"))
	fmt.Println()
	times := res.Traditional.Rec.Times()
	totT, _ := res.Traditional.Rec.Series("total")
	totD, _ := res.DL.Rec.Series("total")
	fmt.Print(ascii.LineChart([]ascii.Series{
		{Name: "traditional", X: times, Y: totT},
		{Name: "DL-based", X: times, Y: totD},
	}, 70, 12, "Total energy (cold beam)", false))
	fmt.Println()
	rows := [][]string{{"Quantity", "Paper", "Measured"}}
	rows = append(rows, []string{"traditional beam heating (RMS dv)", "ripples visible",
		fmt.Sprintf("%.4g -> %.4g", res.Traditional.VelocitySpreadStart, res.Traditional.VelocitySpreadEnd)})
	rows = append(rows, []string{"DL-based beam heating (RMS dv)", "no ripples",
		fmt.Sprintf("%.4g -> %.4g", res.DL.VelocitySpreadStart, res.DL.VelocitySpreadEnd)})
	rows = append(rows, []string{"DL cycle + exact solver (oracle)", "-",
		fmt.Sprintf("%.4g -> %.4g", res.Oracle.VelocitySpreadStart, res.Oracle.VelocitySpreadEnd)})
	rows = append(rows, []string{"traditional energy variation", "grows (instability)",
		fmt.Sprintf("%.3f%%", 100*res.Traditional.EnergyVariation)})
	rows = append(rows, []string{"DL-based energy variation", "flat-ish",
		fmt.Sprintf("%.3f%%", 100*res.DL.EnergyVariation)})
	rows = append(rows, []string{"DL cycle + exact solver energy var.", "-",
		fmt.Sprintf("%.3f%%", 100*res.Oracle.EnergyVariation)})
	rows = append(rows, []string{"DL-based momentum drift", "grows with time",
		fmt.Sprintf("%.3g", res.DL.MomentumDrift)})
	fmt.Println(ascii.Table(rows))
}

func renderOracle(res *experiments.RunResult) {
	fmt.Println("== Oracle ablation: DL cycle with exact field recovery ==")
	rows := [][]string{{"Quantity", "Value"}}
	rows = append(rows, []string{"growth rate", fitString(res)})
	rows = append(rows, []string{"energy variation", fmt.Sprintf("%.2f%%", 100*res.EnergyVariation)})
	rows = append(rows, []string{"momentum drift", fmt.Sprintf("%.3g", res.MomentumDrift)})
	fmt.Println(ascii.Table(rows))
}
