// Command vlasovrun executes the 1D1V semi-Lagrangian Vlasov-Poisson
// solver (the paper's suggested noise-free data source) on the
// two-stream problem and reports growth rate, conservation and optional
// plots — the continuum counterpart of cmd/picrun.
//
// Examples:
//
//	vlasovrun -steps 300                      # paper box, v0 = 0.2
//	vlasovrun -v0 0 -vth 1 -L 12.566 -plot    # Langmuir / Landau setup
//	vlasovrun -csv run.csv -phase
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dlpic/internal/ascii"
	"dlpic/internal/diag"
	"dlpic/internal/theory"
	"dlpic/internal/vlasov"
)

func main() {
	var (
		nx    = flag.Int("nx", 64, "spatial cells")
		nv    = flag.Int("nv", 128, "velocity cells")
		box   = flag.Float64("L", 2*math.Pi/3.06, "box length")
		vmin  = flag.Float64("vmin", -0.8, "velocity window lower edge")
		vmax  = flag.Float64("vmax", 0.8, "velocity window upper edge")
		dt    = flag.Float64("dt", 0.1, "time step")
		steps = flag.Int("steps", 300, "number of steps")
		v0    = flag.Float64("v0", 0.2, "beam drift speed")
		vth   = flag.Float64("vth", 0.03, "beam thermal spread")
		amp   = flag.Float64("amp", 1e-4, "seeded mode-1 density perturbation")
		plot  = flag.Bool("plot", false, "ASCII charts")
		phase = flag.Bool("phase", false, "ASCII phase-space heatmap of f")
		csv   = flag.String("csv", "", "write diagnostics CSV")
	)
	flag.Parse()
	if err := run(*nx, *nv, *box, *vmin, *vmax, *dt, *steps, *v0, *vth, *amp, *plot, *phase, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "vlasovrun:", err)
		os.Exit(1)
	}
}

func run(nx, nv int, box, vmin, vmax, dt float64, steps int, v0, vth, amp float64, plot, phase bool, csvPath string) error {
	cfg := vlasov.Default()
	cfg.NX, cfg.NV = nx, nv
	cfg.Length = box
	cfg.VMin, cfg.VMax = vmin, vmax
	cfg.Dt = dt
	solver, err := vlasov.New(cfg, vlasov.TwoStreamInit{V0: v0, Vth: vth, Amp: amp, Mode: 1})
	if err != nil {
		return err
	}
	fmt.Printf("vlasov: %dx%d grid, L=%.4g, v in [%g,%g], dt=%g, v0=%g vth=%g\n",
		nx, nv, box, vmin, vmax, dt, v0, vth)
	mass0 := solver.Mass()
	var rec diag.Recorder
	if err := solver.Run(steps, &rec); err != nil {
		return err
	}

	ts := theory.TwoStream{Wp: cfg.Wp, V0: v0, Vth: vth}
	k1 := 2 * math.Pi / box
	rows := [][]string{{"Quantity", "Value"}}
	rows = append(rows, []string{"simulated time", fmt.Sprintf("%.4g", solver.Time())})
	rows = append(rows, []string{"mass drift", fmt.Sprintf("%.3g", (solver.Mass()-mass0)/mass0)})
	rows = append(rows, []string{"min f (undershoot)", fmt.Sprintf("%.3g", solver.MinF())})
	if ts.Unstable(k1) {
		rows = append(rows, []string{"linear theory gamma (warm)", fmt.Sprintf("%.4f", ts.GrowthRateWarm(k1))})
		amps, _ := rec.Series("mode")
		times := rec.Times()
		if t0, t1, werr := diag.AutoGrowthWindow(times, amps, 0.001, 0.3); werr == nil {
			if fit, ferr := diag.FitGrowthRate(times, amps, t0, t1); ferr == nil {
				rows = append(rows, []string{"measured gamma",
					fmt.Sprintf("%.4f  (R2=%.5f)", fit.Gamma, fit.R2)})
			}
		}
	} else {
		rows = append(rows, []string{"linear theory", "stable configuration"})
	}
	tot, _ := rec.Series("total")
	rows = append(rows, []string{"max energy variation", fmt.Sprintf("%.4f%%", 100*diag.MaxRelativeVariation(tot))})
	mom, _ := rec.Series("momentum")
	rows = append(rows, []string{"momentum drift", fmt.Sprintf("%.4g", diag.Drift(mom))})
	fmt.Println(ascii.Table(rows))

	if plot {
		times := rec.Times()
		amps, _ := rec.Series("mode")
		fmt.Print(ascii.LineChart([]ascii.Series{{Name: "E1", X: times, Y: amps}},
			70, 14, "Mode-1 amplitude (log)", true))
	}
	if phase {
		fmt.Print(ascii.Heatmap(solver.F, cfg.NV, cfg.NX,
			fmt.Sprintf("f(x, v) at t=%.3g", solver.Time()),
			fmt.Sprintf("x in [0, %.3g)", box),
			fmt.Sprintf("v in [%g, %g]", vmin, vmax)))
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d samples)\n", csvPath, rec.Len())
	}
	return nil
}
