// Command train fits a DL electric-field solver on a corpus produced by
// cmd/datagen and writes a deployable model bundle (network weights +
// input normalizer + binning spec) for cmd/picrun -method dl.
// It reports the paper's Table-I metrics (MAE, max error) on a held-out
// test split.
//
// Examples:
//
//	train -data corpus.ds -out solver.dlpic                 # scaled MLP
//	train -data corpus.ds -arch cnn -epochs 100 -lr 1e-4    # paper CNN
//	train -data corpus.ds -loss pinn                        # physics loss
//
// Checkpointed training: -checkpoint writes the full training state
// (weights, optimizer moments, shuffle cursor, history) atomically
// after every -checkpoint-every epochs; after a kill, -resume restores
// it and continues to -epochs, producing a model bundle byte-identical
// to an uninterrupted run's:
//
//	train -data corpus.ds -epochs 100 -checkpoint fit.ckpt
//	train -data corpus.ds -epochs 100 -checkpoint fit.ckpt -resume
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dlpic/internal/ascii"
	"dlpic/internal/core"
	"dlpic/internal/dataset"
	"dlpic/internal/nn"
	"dlpic/internal/rng"
)

func main() {
	var (
		data   = flag.String("data", "", "training corpus path (from datagen)")
		out    = flag.String("out", "solver.dlpic", "output model bundle path")
		arch   = flag.String("arch", "mlp", "architecture: mlp | cnn | resmlp")
		hidden = flag.Int("hidden", 128, "dense layer width (paper: 1024)")
		layers = flag.Int("layers", 3, "dense layer count (paper: 3)")
		ch1    = flag.Int("ch1", 4, "CNN block-1 channels")
		ch2    = flag.Int("ch2", 8, "CNN block-2 channels")
		blocks = flag.Int("blocks", 2, "ResMLP residual blocks")
		epochs = flag.Int("epochs", 30, "training epochs (paper: 150 MLP / 100 CNN)")
		batch  = flag.Int("batch", 64, "batch size (paper: 64)")
		lr     = flag.Float64("lr", 1e-3, "Adam learning rate (paper: 1e-4)")
		loss   = flag.String("loss", "mse", "loss: mse | mae | huber | pinn")
		valN   = flag.Int("val", 0, "validation samples (0 = 1/40 of corpus)")
		testN  = flag.Int("test", 0, "test samples (0 = 1/40 of corpus)")
		seed   = flag.Uint64("seed", 1, "seed for init and shuffling")
		cells  = flag.Int("grid-cells", 64, "PIC grid cells (for the pinn loss dx)")
		tw     = flag.Int("train-workers", 0, "data-parallel training workers (0 = GOMAXPROCS); weights and losses are bit-identical for any value")
		pipe   = flag.Bool("pipeline", false, "overlap each batch's gather with the previous optimizer step; weights and losses are bit-identical with or without it")
		ckpt   = flag.String("checkpoint", "", "write the full training state (weights, optimizer moments, shuffle cursor, history) to this file after each checkpoint interval; resume a killed fit with -resume")
		ckptN  = flag.Int("checkpoint-every", 1, "checkpoint after every N epochs (the final epoch is always checkpointed)")
		resume = flag.Bool("resume", false, "resume training from the -checkpoint file: continues to -epochs and is bit-identical to an uninterrupted fit (the network comes from the checkpoint; -arch/-hidden/... are ignored, and everything else must match the interrupted run)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "train: -data is required")
		os.Exit(2)
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "train: -resume needs -checkpoint")
		os.Exit(2)
	}
	err := run(trainOpts{
		data: *data, out: *out, arch: *arch,
		hidden: *hidden, layers: *layers, ch1: *ch1, ch2: *ch2, blocks: *blocks,
		epochs: *epochs, batch: *batch, lr: *lr, loss: *loss,
		valN: *valN, testN: *testN, seed: *seed, gridCells: *cells, trainWorkers: *tw,
		pipeline:   *pipe,
		checkpoint: nn.Checkpoint{Path: *ckpt, Every: *ckptN}, resume: *resume,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

// trainOpts bundles the CLI flags.
type trainOpts struct {
	data, out, arch                  string
	hidden, layers, ch1, ch2, blocks int
	epochs, batch                    int
	lr                               float64
	loss                             string
	valN, testN                      int
	seed                             uint64
	gridCells, trainWorkers          int
	pipeline                         bool
	checkpoint                       nn.Checkpoint
	resume                           bool
}

func run(o trainOpts) error {
	ds, err := dataset.LoadFile(o.data)
	if err != nil {
		return err
	}
	if !ds.Normalized {
		if err := ds.Normalize(); err != nil {
			return err
		}
	}
	ds.Shuffle(o.seed)
	valN, testN := o.valN, o.testN
	if valN <= 0 {
		valN = ds.N() / 40
		if valN < 8 {
			valN = 8
		}
	}
	if testN <= 0 {
		testN = valN
	}
	train, val, test, err := ds.Split(ds.N()-valN-testN, valN, testN)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "train: %d train / %d val / %d test samples, %d inputs -> %d outputs\n",
		train.N(), val.N(), test.N(), ds.Spec.Size(), ds.Cells)

	var lossFn nn.Loss
	switch o.loss {
	case "mse":
		lossFn = nn.MSE{}
	case "mae":
		lossFn = nn.MAE{}
	case "huber":
		lossFn = nn.Huber{Delta: 0.05}
	case "pinn":
		dx := ds.Spec.L / float64(o.gridCells)
		lossFn = nn.PhysicsMSE{Dx: dx, LambdaDiv: 0.1, LambdaMean: 0.1}
	default:
		return fmt.Errorf("unknown loss %q", o.loss)
	}
	tc := nn.TrainConfig{
		Epochs: o.epochs, BatchSize: o.batch, Optimizer: nn.NewAdam(o.lr),
		Loss: lossFn, Seed: o.seed + 2, Log: os.Stderr, LogEvery: 5,
		Workers: o.trainWorkers, Pipeline: o.pipeline, Checkpoint: o.checkpoint,
	}

	var net *nn.Network
	var hist nn.History
	if o.resume {
		// The checkpoint carries the architecture and weights; the data,
		// loss, optimizer and seeds must match the interrupted run (the
		// checkpoint fingerprint enforces it).
		net, hist, err = nn.ResumeFit(train.Inputs, train.Targets, val.Inputs, val.Targets, tc)
		if err != nil {
			return err
		}
	} else {
		r := rng.New(o.seed + 1)
		switch o.arch {
		case "mlp":
			net, err = nn.NewMLP(nn.MLPConfig{
				InDim: ds.Spec.Size(), OutDim: ds.Cells, Hidden: o.hidden, HiddenLayers: o.layers}, r)
		case "cnn":
			net, err = nn.NewCNN(nn.CNNConfig{
				H: ds.Spec.NV, W: ds.Spec.NX, OutDim: ds.Cells,
				Channels1: o.ch1, Channels2: o.ch2, Kernel: 3, Hidden: o.hidden, HiddenLayers: o.layers}, r)
		case "resmlp":
			net, err = nn.NewResMLP(nn.ResMLPConfig{
				InDim: ds.Spec.Size(), OutDim: ds.Cells, Hidden: o.hidden, Blocks: o.blocks}, r)
		default:
			return fmt.Errorf("unknown architecture %q", o.arch)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "train: %s\n", net.Summary())
		hist, err = nn.Fit(net, train.Inputs, train.Targets, val.Inputs, val.Targets, tc)
		if err != nil {
			return err
		}
	}
	final := hist.Final()
	fmt.Fprintf(os.Stderr, "train: final loss %.6g, val MAE %.6g\n", final.TrainLoss, final.ValMAE)

	m := nn.Evaluate(net, test.Inputs, test.Targets, o.batch)
	var maxField float64
	for _, v := range test.Targets.Data {
		if a := math.Abs(v); a > maxField {
			maxField = a
		}
	}
	fmt.Println(ascii.Table([][]string{
		{"Metric (held-out test)", "Value"},
		{"Mean Absolute Error", fmt.Sprintf("%.4g", m.MAE)},
		{"Max Error", fmt.Sprintf("%.4g", m.MaxErr)},
		{"RMSE", fmt.Sprintf("%.4g", m.RMSE)},
		{"Max |E| in test set", fmt.Sprintf("%.4g", maxField)},
		{"Samples", fmt.Sprintf("%d", m.N)},
	}))

	solver, err := core.NewNNSolver(net, ds.Spec, ds.Norm, ds.Cells)
	if err != nil {
		return err
	}
	if err := core.SaveModelFile(solver, ds.Cells, o.out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", o.out)
	return nil
}
