// Command dlpicd is the campaign service daemon: it accepts campaign
// specs over HTTP (POST /campaigns), runs them on a bounded executor
// pool with journal-backed persistence, and streams per-cell progress
// (GET /campaigns/{id}/stream). Submissions are content-addressed, so
// resubmitting a spec — from any client, any number of times — joins
// the existing job instead of recomputing it, and trained model
// bundles are shared across jobs through fingerprint keying.
//
// SIGINT/SIGTERM drains gracefully: running campaigns stop at the next
// cell boundary with their completed cells journaled, and the next
// daemon start over the same -data directory resumes them. A kill -9
// loses at most the in-flight cells; the journal's resume contract
// makes the eventual results bit-identical either way.
//
// With -coordinator the daemon additionally mounts the distributed
// execution endpoints (/dist/claim, /dist/heartbeat, /dist/complete,
// GET /bundles/{fingerprint}) and jobs submitted with
// "distributed": true are fanned across dlpicworker processes under
// the lease protocol of internal/dist — same journal, same digest,
// workers merely execute. DL methods train in the daemon first (into
// the shared bundle store), then ship to workers as
// fingerprint-addressed, digest-verified model bundles; workers cache
// them on disk (-cache-dir) so a fleet downloads each bundle once per
// worker.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dlpic/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8350", "listen address")
	data := flag.String("data", "", "persistent data directory (specs, journals, results, model bundles); required")
	queue := flag.Int("queue", 8, "admission queue capacity (full queue refuses with 429)")
	executors := flag.Int("executors", 1, "concurrent campaign executors")
	workers := flag.Int("workers", 0, "sweep workers per campaign (0 = one per core)")
	trainWorkers := flag.Int("train-workers", 0, "training shard workers (0 = engine default)")
	coordinator := flag.Bool("coordinator", false, "enable distributed execution: mount /dist lease endpoints and run distributed:true jobs on remote dlpicworker processes")
	leaseTTL := flag.Duration("lease-ttl", 0, "distributed cell lease lifetime (0 = dist default); a worker silent this long forfeits its cell")
	flag.Parse()
	if err := run(*addr, serve.Config{
		DataDir: *data, QueueCap: *queue, Executors: *executors,
		SweepWorkers: *workers, TrainWorkers: *trainWorkers,
		Coordinator: *coordinator, LeaseTTL: *leaseTTL, Log: os.Stderr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dlpicd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config) error {
	if cfg.DataDir == "" {
		return fmt.Errorf("-data is required")
	}
	d, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "dlpicd: draining")
		d.Drain()
		srv.Shutdown(context.Background())
	}()
	fmt.Printf("dlpicd listening on %s (data %s)\n", ln.Addr(), cfg.DataDir)
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	fmt.Fprintln(os.Stderr, "dlpicd: drained, bye")
	return nil
}
