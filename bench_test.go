// Benchmarks regenerating the computational kernels behind every table
// and figure of the paper, plus the ablations called out in DESIGN.md.
// One bench (or bench pair) corresponds to each experiment:
//
//	Table I  -> BenchmarkTableI_MLPInference / _CNNInference / _Evaluate
//	Fig 4/5  -> BenchmarkFig4_TraditionalStep / _DLStep / _OracleStep
//	Fig 6    -> BenchmarkFig6_ColdBeamTraditional / _ColdBeamDL
//	§VII     -> BenchmarkFieldSolve_* (NN inference vs Poisson pipeline,
//	            the performance claim the paper defers)
//
// plus ablations: Poisson backends, deposit orders, phase-space binning
// orders, and the physics-informed loss.
//
// Run: go test -bench=. -benchmem .
package dlpic_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dlpic"
	"dlpic/internal/batch"
	"dlpic/internal/core"
	"dlpic/internal/experiments"
	"dlpic/internal/grid"
	"dlpic/internal/interp"
	"dlpic/internal/nn"
	"dlpic/internal/phasespace"
	"dlpic/internal/pic"
	"dlpic/internal/poisson"
	"dlpic/internal/rng"
	"dlpic/internal/sweep"
	"dlpic/internal/tensor"
)

// ---------------------------------------------------------------------------
// Shared fixture: a tiny trained pipeline (built once per bench run).

var (
	fixtureOnce sync.Once
	fixture     *experiments.Pipeline
	fixtureErr  error
)

func getFixture(b *testing.B) *experiments.Pipeline {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = experiments.New(experiments.Options{Tiny: true, Seed: 1})
	})
	if fixtureErr != nil {
		b.Fatalf("fixture: %v", fixtureErr)
	}
	return fixture
}

// histogramInput produces one normalized network input from a fresh
// simulation state.
func histogramInput(b *testing.B, p *experiments.Pipeline) []float64 {
	b.Helper()
	cfg := p.ValidationConfig(3)
	sim, err := pic.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	hist, err := phasespace.NewHist(p.Spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := hist.Bin(sim.P.X, sim.P.V); err != nil {
		b.Fatal(err)
	}
	in := make([]float64, p.Spec.Size())
	p.Train.Norm.Apply(in, hist.Data)
	return in
}

// ---------------------------------------------------------------------------
// Table I

// BenchmarkTableI_MLPInference times one DL electric-field solve with
// the MLP — the operation Table I's metrics are computed over.
func BenchmarkTableI_MLPInference(b *testing.B) {
	p := getFixture(b)
	in := histogramInput(b, p)
	out := make([]float64, p.Cfg.Cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MLP.Net.Predict1(in, out)
	}
}

// BenchmarkTableI_CNNInference is the CNN counterpart.
func BenchmarkTableI_CNNInference(b *testing.B) {
	p := getFixture(b)
	in := histogramInput(b, p)
	out := make([]float64, p.Cfg.Cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CNN.Net.Predict1(in, out)
	}
}

// BenchmarkTableI_Evaluate times the full Table-I metric computation
// (MAE + max error) over the held-out test set.
func BenchmarkTableI_Evaluate(b *testing.B) {
	p := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Evaluate(p.MLP.Net, p.TestI.Inputs, p.TestI.Targets, 64)
	}
}

// ---------------------------------------------------------------------------
// Fig 4 / Fig 5 (same runs)

func benchSteps(b *testing.B, cfg pic.Config, method pic.FieldMethod) {
	b.Helper()
	sim, err := pic.New(cfg, method)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_TraditionalStep times one step of the traditional-PIC
// validation run (v0 = 0.2, vth = 0.025).
func BenchmarkFig4_TraditionalStep(b *testing.B) {
	p := getFixture(b)
	benchSteps(b, p.ValidationConfig(11), nil)
}

// BenchmarkFig4_DLStep times one step of the DL-based run: phase-space
// binning + MLP inference replace deposit + Poisson.
func BenchmarkFig4_DLStep(b *testing.B) {
	p := getFixture(b)
	benchSteps(b, p.ValidationConfig(11), p.MLP)
}

// BenchmarkFig4_OracleStep times the DL cycle with exact field recovery
// (ablation: cycle cost without network inference).
func BenchmarkFig4_OracleStep(b *testing.B) {
	p := getFixture(b)
	cfg := p.ValidationConfig(11)
	oracle, err := core.NewOracleSolver(cfg, p.Spec)
	if err != nil {
		b.Fatal(err)
	}
	benchSteps(b, cfg, oracle)
}

// ---------------------------------------------------------------------------
// Fig 6

// BenchmarkFig6_ColdBeamTraditional times the cold-beam configuration
// under the traditional method.
func BenchmarkFig6_ColdBeamTraditional(b *testing.B) {
	p := getFixture(b)
	benchSteps(b, p.ColdBeamConfig(13), nil)
}

// BenchmarkFig6_ColdBeamDL is the DL counterpart of the Fig 6 run.
func BenchmarkFig6_ColdBeamDL(b *testing.B) {
	p := getFixture(b)
	benchSteps(b, p.ColdBeamConfig(13), p.MLP)
}

// ---------------------------------------------------------------------------
// §VII performance claim: DL field solve vs traditional field solve.

// BenchmarkFieldSolve_Traditional times the deposit + Poisson + gradient
// pipeline in isolation (the stage the paper replaces).
func BenchmarkFieldSolve_Traditional(b *testing.B) {
	p := getFixture(b)
	cfg := p.ValidationConfig(17)
	sim, err := pic.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	method := sim.Method().(*pic.TraditionalField)
	e := make([]float64, cfg.Cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := method.ComputeField(sim, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSolve_DL times the bin + normalize + MLP inference
// pipeline (the stage that replaces it).
func BenchmarkFieldSolve_DL(b *testing.B) {
	p := getFixture(b)
	cfg := p.ValidationConfig(17)
	sim, err := pic.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	e := make([]float64, cfg.Cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MLP.ComputeField(sim, e); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations

// BenchmarkAblation_PoissonSolvers compares the Poisson backends on the
// paper's 64-cell grid.
func BenchmarkAblation_PoissonSolvers(b *testing.B) {
	g := grid.MustNew(64, dlpic.DefaultConfig().Length)
	r := rng.New(1)
	rho := make([]float64, g.N())
	for i := range rho {
		rho[i] = r.NormFloat64()
	}
	g.SubtractMean(rho)
	phi := make([]float64, g.N())
	sor, _ := poisson.NewSOR(g, 1, 1.7, 0, 0)
	solvers := []poisson.Solver{
		poisson.NewSpectral(g, 1),
		poisson.NewSpectralFD(g, 1),
		poisson.NewCG(g, 1, 0, 0),
		sor,
	}
	for _, s := range solvers {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Solve(phi, rho); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DepositOrders compares NGP/CIC/TSC deposits at the
// paper's full particle count (64,000).
func BenchmarkAblation_DepositOrders(b *testing.B) {
	cfg := dlpic.DefaultConfig()
	g := grid.MustNew(cfg.Cells, cfg.Length)
	r := rng.New(2)
	pos := make([]float64, cfg.NumParticles())
	for i := range pos {
		pos[i] = r.Float64() * cfg.Length
	}
	rho := make([]float64, g.N())
	for _, s := range []interp.Scheme{interp.NGP, interp.CIC, interp.TSC} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				interp.Deposit(s, g, pos, -1, rho)
			}
		})
	}
}

// BenchmarkAblation_BinningOrders compares NGP vs CIC phase-space
// binning (the paper's suggested higher-order binning extension).
func BenchmarkAblation_BinningOrders(b *testing.B) {
	cfg := dlpic.DefaultConfig()
	r := rng.New(3)
	n := cfg.NumParticles()
	x := make([]float64, n)
	v := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() * cfg.Length
		v[i] = 0.25 * r.NormFloat64()
	}
	for _, scheme := range []interp.Scheme{interp.NGP, interp.CIC} {
		spec := phasespace.DefaultSpec(cfg.Length)
		spec.Binning = scheme
		hist, err := phasespace.NewHist(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := hist.Bin(x, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PhysicsLoss compares the plain MSE loss against the
// physics-informed variant (Gauss-law + neutrality penalties).
func BenchmarkAblation_PhysicsLoss(b *testing.B) {
	r := rng.New(4)
	pred := tensor.New(64, 64)
	targ := tensor.New(64, 64)
	grad := tensor.New(64, 64)
	pred.RandomNormal(r, 0.05)
	targ.RandomNormal(r, 0.05)
	losses := []nn.Loss{
		nn.MSE{},
		nn.PhysicsMSE{Dx: 0.032, LambdaDiv: 0.1, LambdaMean: 0.1},
	}
	for _, l := range losses {
		b.Run(l.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Forward(pred, targ, grad)
			}
		})
	}
}

// BenchmarkAblation_EnergyConservingGather compares the
// momentum-conserving (CIC) and energy-conserving gather variants.
func BenchmarkAblation_EnergyConservingGather(b *testing.B) {
	for _, ec := range []struct {
		name string
		on   bool
	}{{"momentum-conserving", false}, {"energy-conserving", true}} {
		b.Run(ec.name, func(b *testing.B) {
			cfg := dlpic.DefaultConfig()
			cfg.ParticlesPerCell = 100
			cfg.EnergyConserving = ec.on
			benchSteps(b, cfg, nil)
		})
	}
}

// BenchmarkTraining_ShardedFit compares the single-shard serial
// training path (Shards=1, Workers=1 — the pre-sharding reference)
// against the deterministic data-parallel engine on a paper-shaped MLP
// (4096 phase-space inputs, batch 64). One op is one epoch over 64
// samples. All variants produce bit-identical weights for a given
// shard count; run with -cpu 1,4,8 to see worker scaling (Workers >
// GOMAXPROCS adds only scheduling overhead).
func BenchmarkTraining_ShardedFit(b *testing.B) {
	const inDim, outDim, hidden, n = 4096, 64, 256, 64
	r := rng.New(51)
	x := tensor.New(n, inDim)
	y := tensor.New(n, outDim)
	x.RandomNormal(r, 1)
	y.RandomNormal(r, 0.1)
	for _, tc := range []struct {
		name            string
		workers, shards int
	}{
		{"serial", 1, 1},
		{"sharded-w1", 1, 0},
		{"sharded-w2", 2, 0},
		{"sharded-w4", 4, 0},
		{"sharded-w8x8", 8, 8}, // explicit 8 shards: auto picks 4 for batch 64
	} {
		b.Run(tc.name, func(b *testing.B) {
			net, err := nn.NewMLP(nn.MLPConfig{
				InDim: inDim, OutDim: outDim, Hidden: hidden, HiddenLayers: 3}, rng.New(52))
			if err != nil {
				b.Fatal(err)
			}
			opt := nn.NewAdam(1e-4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nn.Fit(net, x, y, nil, nil, nn.TrainConfig{
					Epochs: 1, BatchSize: 64, Optimizer: opt, Loss: nn.MSE{},
					Seed: uint64(i), Workers: tc.workers, Shards: tc.shards,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraining_CNNShardedFit is the CNN counterpart on the
// fixture-scale architecture: conv layers loop over samples serially
// within a shard, so batch sharding is the only batch-level
// parallelism the conv path has.
func BenchmarkTraining_CNNShardedFit(b *testing.B) {
	const h, w, outDim, n = 16, 16, 16, 64
	r := rng.New(53)
	x := tensor.New(n, h*w)
	y := tensor.New(n, outDim)
	x.RandomNormal(r, 1)
	y.RandomNormal(r, 0.1)
	for _, tc := range []struct {
		name            string
		workers, shards int
	}{
		{"serial", 1, 1},
		{"sharded-w1", 1, 0},
		{"sharded-w4", 4, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net, err := nn.NewCNN(nn.CNNConfig{
				H: h, W: w, OutDim: outDim, Channels1: 4, Channels2: 8,
				Kernel: 3, Hidden: 64, HiddenLayers: 2}, rng.New(54))
			if err != nil {
				b.Fatal(err)
			}
			opt := nn.NewAdam(1e-4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nn.Fit(net, x, y, nil, nil, nn.TrainConfig{
					Epochs: 1, BatchSize: 64, Optimizer: opt, Loss: nn.MSE{},
					Seed: uint64(i), Workers: tc.workers, Shards: tc.shards,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraining_Evaluate times the parallel deterministic Evaluate
// on a paper-shaped MLP over a 512-sample set (batch 64).
func BenchmarkTraining_Evaluate(b *testing.B) {
	const inDim, outDim, n = 4096, 64, 512
	net, err := nn.NewMLP(nn.MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 256, HiddenLayers: 3}, rng.New(55))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(56)
	x := tensor.New(n, inDim)
	y := tensor.New(n, outDim)
	x.RandomNormal(r, 1)
	y.RandomNormal(r, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Evaluate(net, x, y, 64)
	}
}

// BenchmarkTraining_MLPEpoch times one training epoch of the tiny MLP
// (the offline cost of the paper's method).
func BenchmarkTraining_MLPEpoch(b *testing.B) {
	p := getFixture(b)
	net, err := nn.NewMLP(nn.MLPConfig{
		InDim: p.Spec.Size(), OutDim: p.Cfg.Cells, Hidden: 32, HiddenLayers: 3,
	}, rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Fit(net, p.Train.Inputs, p.Train.Targets, nil, nil, nn.TrainConfig{
			Epochs: 1, BatchSize: 64, Optimizer: nn.NewAdam(1e-3), Loss: nn.MSE{}, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel hot path and sweep throughput. Run with -cpu 1,4,8 to
// measure multi-core scaling; the deterministic chunked kernels produce
// bit-identical physics at every setting.

// BenchmarkHotPath_Deposit times a CIC deposit at the paper's full
// particle count (64,000) — the dominant scatter kernel of the step.
func BenchmarkHotPath_Deposit(b *testing.B) {
	cfg := dlpic.DefaultConfig()
	g := grid.MustNew(cfg.Cells, cfg.Length)
	r := rng.New(21)
	pos := make([]float64, cfg.NumParticles())
	for i := range pos {
		pos[i] = r.Float64() * cfg.Length
	}
	rho := make([]float64, g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp.Deposit(interp.CIC, g, pos, -1, rho)
	}
}

// BenchmarkHotPath_FullStep times one traditional-PIC step at the
// paper's full scale (64 cells x 1000 particles/cell).
func BenchmarkHotPath_FullStep(b *testing.B) {
	cfg := dlpic.DefaultConfig()
	sim, err := pic.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedInference compares the per-call DL field solve (N
// independent Predict1 calls, what a sweep of N concurrent NN-method
// scenarios pays per step) against one stacked PredictBatch of N rows,
// on a paper-shaped MLP (64x64 phase-space input). Compare percall-N
// against batched-N directly: both do N rows per op, so ns/op is the
// per-step inference cost of an N-scenario pool. The batched path wins
// because each layer's weight matrix is streamed from memory once per
// batch instead of once per row (k-outer GEMM in internal/tensor).
func BenchmarkBatchedInference(b *testing.B) {
	const inDim, outDim, maxWidth = 4096, 64, 16
	net, err := nn.NewMLP(nn.MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 256, HiddenLayers: 3}, rng.New(31))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(32)
	in := make([]float64, maxWidth*inDim)
	for i := range in {
		in[i] = r.Float64()
	}
	out := make([]float64, maxWidth*outDim)
	for _, width := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("percall-%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for w := 0; w < width; w++ {
					net.Predict1(in[w*inDim:(w+1)*inDim], out[w*outDim:(w+1)*outDim])
				}
			}
		})
		b.Run(fmt.Sprintf("batched-%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net.PredictBatch(width, in[:width*inDim], out[:width*outDim])
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Raw-speed floor: GEMM kernels, pipelined trainer, float32 inference.

// sparseTensor fills a tensor with normal variates and ~25% exact
// zeros — the sparsity pattern ReLU activations feed the training
// GEMMs, which the kernels' zero-skip is tuned for.
func sparseTensor(r *rng.Source, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	t.RandomNormal(r, 1)
	for i := range t.Data {
		if r.Float64() < 0.25 {
			t.Data[i] = 0
		}
	}
	return t
}

// benchMatMul times the tiled kernel against the naive reference for
// one shape x transpose case (both in the same process, so the ratio is
// immune to cross-session machine noise). Steady-state allocs/op must
// stay at goroutine-bookkeeping level: the TN transpose pack comes from
// a pool (TestMatMulPackPooled in internal/tensor asserts it).
func benchMatMul(b *testing.B, m, k, n int, transA, transB bool) {
	r := rng.New(61)
	am, ak := m, k
	if transA {
		am, ak = ak, am
	}
	bk, bn := k, n
	if transB {
		bk, bn = bn, bk
	}
	a := sparseTensor(r, am, ak)
	w := sparseTensor(r, bk, bn)
	dst := tensor.New(m, n)
	b.Run("tiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMul(dst, a, w, transA, transB)
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulRef(dst, a, w, transA, transB)
		}
	})
}

// matMulShapes is the recorded GEMM grid: the paper-shaped forward
// product (batch 64, 4096 phase-space inputs), a square stress shape,
// and a narrow-output tail. The NT and TN variants run the same grid in
// their gradient orientation (dx = dy * W^T, dW = x^T * dy).
var matMulShapes = []struct{ m, k, n int }{
	{64, 4096, 256}, // paper-shaped
	{512, 512, 512}, // square
	{64, 1024, 64},  // narrow output
}

// BenchmarkMatMul_NN times the forward-pass orientation (x * W).
func BenchmarkMatMul_NN(b *testing.B) {
	for _, sh := range matMulShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			benchMatMul(b, sh.m, sh.k, sh.n, false, false)
		})
	}
}

// BenchmarkMatMul_NT times the input-gradient orientation (dy * W^T).
func BenchmarkMatMul_NT(b *testing.B) {
	for _, sh := range matMulShapes {
		// Gradient orientation: m rows of dy against the k-dim of W.
		m, k, n := sh.m, sh.n, sh.k
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			benchMatMul(b, m, k, n, false, true)
		})
	}
}

// BenchmarkMatMul_TN times the weight-gradient orientation (x^T * dy).
func BenchmarkMatMul_TN(b *testing.B) {
	for _, sh := range matMulShapes {
		// Weight gradient: [k-in, batch] x [batch, n-out].
		m, k, n := sh.k, sh.m, sh.n
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			benchMatMul(b, m, k, n, true, false)
		})
	}
}

// BenchmarkTraining_PipelinedFit compares the serial batch loop against
// the pipelined trainer (gather of batch t+1 overlapped with the clip +
// optimizer step of batch t) on a paper-shaped MLP, in one process.
// Weights are bit-identical between the variants
// (TestPipelinedFitBitIdentical); only the wall clock moves.
func BenchmarkTraining_PipelinedFit(b *testing.B) {
	const inDim, outDim, hidden, n = 4096, 64, 256, 128
	r := rng.New(63)
	x := tensor.New(n, inDim)
	y := tensor.New(n, outDim)
	x.RandomNormal(r, 1)
	y.RandomNormal(r, 0.1)
	for _, tc := range []struct {
		name     string
		pipeline bool
	}{
		{"serial", false},
		{"pipelined", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net, err := nn.NewMLP(nn.MLPConfig{
				InDim: inDim, OutDim: outDim, Hidden: hidden, HiddenLayers: 3}, rng.New(64))
			if err != nil {
				b.Fatal(err)
			}
			opt := nn.NewAdam(1e-4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nn.Fit(net, x, y, nil, nil, nn.TrainConfig{
					Epochs: 1, BatchSize: 64, Optimizer: opt, Loss: nn.MSE{},
					Seed: uint64(i), Pipeline: tc.pipeline,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedInference32 compares the float64 batched forward pass
// against the opt-in float32 inference path on the paper-shaped MLP —
// the converted-weight GEMMs move half the bytes per solve. One op is
// one 16-row stacked solve (a 16-scenario pool's per-step cost).
func BenchmarkBatchedInference32(b *testing.B) {
	const inDim, outDim, width = 4096, 64, 16
	net, err := nn.NewMLP(nn.MLPConfig{InDim: inDim, OutDim: outDim, Hidden: 256, HiddenLayers: 3}, rng.New(65))
	if err != nil {
		b.Fatal(err)
	}
	pred32, err := nn.NewPredictor32(net)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(66)
	in := make([]float64, width*inDim)
	for i := range in {
		in[i] = r.Float64()
	}
	out := make([]float64, width*outDim)
	b.Run("f64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.PredictBatch(width, in, out)
		}
	})
	b.Run("f32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pred32.PredictBatch(width, in, out)
		}
	})
}

// benchDLSweep runs the fixture's trained MLP over a 4-scenario grid
// through the sweep engine, either per-call (one solver clone per
// scenario) or through the batched inference server.
func benchDLSweep(b *testing.B, batched bool) {
	p := getFixture(b)
	scs := sweep.Grid(p.Cfg, []float64{0.15, 0.2}, []float64{0, 0.025}, 1, 10, 1)
	opts := sweep.Options{SkipFit: true}
	if batched {
		bs, err := batch.FromNNSolver(p.MLP, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer bs.Close()
		opts.Methods = []sweep.MethodSpec{{Name: "mlp-batched", Batcher: bs}}
	} else {
		opts.Methods = []sweep.MethodSpec{{Name: "mlp", Factory: func(sweep.Scenario) (pic.FieldMethod, error) {
			return p.MLP.Clone()
		}}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := sweep.Run(scs, opts)
		if err := sweep.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep_DLPerCall times the 4-scenario DL sweep on the
// per-call path: every scenario clones the solver and pays its own
// Predict1 per step.
func BenchmarkSweep_DLPerCall(b *testing.B) { benchDLSweep(b, false) }

// BenchmarkSweep_DLBatched is the same sweep with the field solves
// stacked through the batched inference server (bit-identical results).
func BenchmarkSweep_DLBatched(b *testing.B) { benchDLSweep(b, true) }

// BenchmarkSweep_TwoStreamGrid times a 4-scenario two-stream sweep
// through the concurrent engine (Workers = GOMAXPROCS, so -cpu scales
// the pool).
func BenchmarkSweep_TwoStreamGrid(b *testing.B) {
	base := dlpic.DefaultConfig()
	base.Cells = 32
	base.ParticlesPerCell = 125
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scs := sweep.Grid(base, []float64{0.15, 0.2}, []float64{0, 0.025}, 1, 25, 1)
		results := sweep.Run(scs, sweep.Options{SkipFit: true})
		if err := sweep.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep_MultiMethodCampaign times a journaled 2-scenario x
// 2-method campaign (traditional + oracle) through the resumable
// campaign engine, including the per-cell journal appends. Workers =
// GOMAXPROCS, so -cpu scales the pool.
func BenchmarkSweep_MultiMethodCampaign(b *testing.B) {
	base := dlpic.DefaultConfig()
	base.Cells = 32
	base.ParticlesPerCell = 125
	dir := b.TempDir()
	spec := dlpic.CampaignSpec{
		Scenarios: sweep.Grid(base, []float64{0.15, 0.2}, []float64{0.01}, 1, 25, 1),
		Opts: sweep.Options{
			SkipFit: true,
			Methods: []dlpic.SweepMethodSpec{
				{Name: "traditional"},
				{Name: "oracle", Factory: func(sc sweep.Scenario) (pic.FieldMethod, error) {
					spec := phasespace.DefaultSpec(sc.Cfg.Length)
					spec.NX = sc.Cfg.Cells // oracle recovery needs NX == Cells
					return core.NewOracleSolver(sc.Cfg, spec)
				}},
			},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh journal per iteration: an existing one would skip
		// every cell and measure nothing but the restore path.
		results, err := dlpic.RunCampaign(fmt.Sprintf("%s/j%d.jsonl", dir, i), spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := sweep.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep_DistLeaseDispatch times an 8-scenario x 2-method
// campaign fanned over the distributed lease protocol — an in-process
// coordinator hub behind a real HTTP server, one worker
// claiming/heartbeating/completing over the wire. The cells are
// deliberately tiny (16 grid cells, 40 particles, 5 steps) so the
// physics is a rounding error and the measurement isolates the
// dispatch overhead itself: claim round-trips, JSON scenario
// marshaling, journal writes via the coordinator. The k1/k8 variants
// differ only in the worker's claim batch size: k8 amortizes the
// per-claim round-trip across up to 8 granted cells (completion stays
// per-cell), so k8/k1 < 1 is the batching win the bench gate asserts.
func BenchmarkSweep_DistLeaseDispatch(b *testing.B) {
	for _, bc := range []struct {
		name       string
		claimBatch int
	}{
		{"k1", 1},
		{"k8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			benchDistLeaseDispatch(b, bc.claimBatch)
		})
	}
}

func benchDistLeaseDispatch(b *testing.B, claimBatch int) {
	base := dlpic.DefaultConfig()
	base.Cells = 16
	base.ParticlesPerCell = 40
	v0s := []float64{0.14, 0.15, 0.16, 0.17, 0.18, 0.19, 0.2, 0.21}
	spec := dlpic.CampaignSpec{
		Scenarios: sweep.Grid(base, v0s, []float64{0.01}, 1, 5, 1),
		Opts: sweep.Options{
			SkipFit: true,
			Methods: []dlpic.SweepMethodSpec{
				{Name: "traditional"},
				{Name: "oracle", Factory: func(sc sweep.Scenario) (pic.FieldMethod, error) {
					spec := phasespace.DefaultSpec(sc.Cfg.Length)
					spec.NX = sc.Cfg.Cells // oracle recovery needs NX == Cells
					return core.NewOracleSolver(sc.Cfg, spec)
				}},
			},
		},
	}
	hub := dlpic.NewDistHub(dlpic.DistOptions{ClaimRetry: time.Millisecond})
	mux := http.NewServeMux()
	hub.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	worker, err := dlpic.NewDistWorker(dlpic.DistWorkerOptions{
		ID:         "bench",
		Client:     dlpic.NewDistClient(srv.URL, nil),
		Methods:    spec.Opts.Methods,
		Poll:       time.Millisecond,
		ClaimBatch: claimBatch,
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		worker.Run(func() bool {
			select {
			case <-stop:
				return true
			default:
				return false
			}
		})
	}()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh journal per iteration, mirroring the in-process
		// campaign bench.
		results, err := hub.Run(fmt.Sprintf("bench%d", i), fmt.Sprintf("%s/j%d.jsonl", dir, i), spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := sweep.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
