# Developer and CI entry points. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: all build test vet race race-train bench bench-json docs ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the packages with concurrent kernels and the sweep engine
# under the race detector.
race:
	$(GO) test -race ./internal/parallel/ ./internal/interp/ ./internal/mover/ \
		./internal/pic/ ./internal/pic2d/ ./internal/sweep/ ./internal/dataset/ \
		./internal/tensor/ ./internal/vlasov/ ./internal/batch/

# race-train runs the training-engine determinism property tests under
# the race detector (the full nn suite is too slow under -race; these
# are the tests that exercise the concurrent shard workers).
race-train:
	$(GO) test -race -run 'BitIdentical|Sharded|TailBatch|ShardEngine|ForwardShard' ./internal/nn/

# bench measures the parallel hot path, sweep throughput, batched
# inference and sharded training at 1, 4 and all cores (bit-identical
# physics and weights at every -cpu setting).
bench:
	$(GO) test -run xxx -bench 'HotPath|Sweep|Batched|Training' -cpu 1,4,8 -benchtime 2s .

# bench-json records the training / inference / sweep benchmark numbers
# as JSON (BENCH_PR3.json) so future PRs can diff performance.
bench-json:
	$(GO) test -run xxx -bench 'Training|Batched|Sweep' -cpu 1,4,8 -benchtime 1s . \
		| $(GO) run ./tools/benchjson -out BENCH_PR3.json

# docs fails when an exported identifier lacks a doc comment, keeping
# `go doc` usable as the API reference.
docs: vet
	$(GO) run ./tools/lintdoc .

ci: build vet test
