# Developer and CI entry points. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: all build test vet race bench ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the packages with concurrent kernels and the sweep engine
# under the race detector.
race:
	$(GO) test -race ./internal/parallel/ ./internal/interp/ ./internal/mover/ \
		./internal/pic/ ./internal/pic2d/ ./internal/sweep/ ./internal/dataset/ \
		./internal/tensor/ ./internal/vlasov/

# bench measures the parallel hot path and sweep throughput at 1, 4 and
# all cores (bit-identical physics at every -cpu setting).
bench:
	$(GO) test -run xxx -bench 'HotPath|Sweep' -cpu 1,4,8 -benchtime 2s .

ci: build vet test
