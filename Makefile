# Developer and CI entry points. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: all build test vet race race-train bench bench-json smoke-campaign docs ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the packages with concurrent kernels, the sweep engine and
# the campaign engine under the race detector.
race:
	$(GO) test -race ./internal/parallel/ ./internal/interp/ ./internal/mover/ \
		./internal/pic/ ./internal/pic2d/ ./internal/sweep/ ./internal/dataset/ \
		./internal/tensor/ ./internal/vlasov/ ./internal/batch/ \
		./internal/campaign/ ./internal/phasespace/

# race-train runs the training-engine determinism property tests under
# the race detector (the full nn suite is too slow under -race; these
# are the tests that exercise the concurrent shard workers).
race-train:
	$(GO) test -race -run 'BitIdentical|Sharded|TailBatch|ShardEngine|ForwardShard' ./internal/nn/

# bench measures the parallel hot path, sweep throughput, batched
# inference and sharded training at 1, 4 and all cores (bit-identical
# physics and weights at every -cpu setting).
bench:
	$(GO) test -run xxx -bench 'HotPath|Sweep|Batched|Training' -cpu 1,4,8 -benchtime 2s .

# bench-json records the training / inference / sweep / campaign
# benchmark numbers as JSON (BENCH_PR4.json) and diffs them against the
# previous committed file so PRs track the performance trajectory.
bench-json:
	$(GO) test -run xxx -bench 'Training|Batched|Sweep' -cpu 1,4,8 -benchtime 1s . \
		| $(GO) run ./tools/benchjson -out BENCH_PR4.json -diff BENCH_PR3.json

# smoke-campaign is the CI interrupt/resume check: run a tiny
# multi-method campaign with a journal, truncate the journal to its
# first two cells (exactly what a kill leaves behind), resume, and
# require the bit-exact campaign digest to match the uninterrupted run.
SMOKE_FLAGS = -scan -methods traditional,oracle -scan-v0s 0.2 -scan-vths 0,0.01 \
	-scan-ppc 40 -steps 40 -workers 4
smoke-campaign:
	$(GO) build -o /tmp/dlpic-smoke ./cmd/experiments
	rm -f /tmp/dlpic-smoke-full.jsonl /tmp/dlpic-smoke-part.jsonl
	/tmp/dlpic-smoke $(SMOKE_FLAGS) -journal /tmp/dlpic-smoke-full.jsonl > /tmp/dlpic-smoke-full.out
	head -n 2 /tmp/dlpic-smoke-full.jsonl > /tmp/dlpic-smoke-part.jsonl
	/tmp/dlpic-smoke $(SMOKE_FLAGS) -resume /tmp/dlpic-smoke-part.jsonl > /tmp/dlpic-smoke-resumed.out
	grep '^campaign digest:' /tmp/dlpic-smoke-full.out > /tmp/dlpic-smoke-digest-full
	grep '^campaign digest:' /tmp/dlpic-smoke-resumed.out > /tmp/dlpic-smoke-digest-resumed
	cat /tmp/dlpic-smoke-digest-full
	diff /tmp/dlpic-smoke-digest-full /tmp/dlpic-smoke-digest-resumed

# docs fails when an exported identifier lacks a doc comment, keeping
# `go doc` usable as the API reference.
docs: vet
	$(GO) run ./tools/lintdoc .

ci: build vet test
