# Developer and CI entry points. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: all build test vet lint race race-train bench bench-json bench-gate smoke-campaign smoke-train smoke-serve smoke-dist docs fmt-check verify-style ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own determinism/serialization static analyzers
# (tools/determlint): nondeterministic inputs in internal packages,
# map-order leaks into ordered sinks, raw concurrency outside the
# sanctioned packages, order-dependent float folds, and unpinned
# gob-serialized types. Suppressions need an in-source
# `//determlint:ignore <analyzer> <reason>` directive.
lint:
	$(GO) run ./tools/determlint ./...

# race runs every internal package that defines raw concurrency or
# transitively imports one (the sweep, campaign and kernel packages)
# under the race detector. The list is derived by determlint's
# raw-concurrency classifier, not hand-maintained; internal/nn is
# excluded because its concurrent shard workers are covered by the
# focused race-train target below (the full nn suite is too slow under
# -race).
race:
	pkgs="$$($(GO) run ./tools/determlint -race-packages -race-exclude internal/nn ./...)" && \
		$(GO) test -race $$pkgs

# race-train runs the training-engine determinism property tests under
# the race detector (the full nn suite is too slow under -race; these
# are the tests that exercise the concurrent shard workers, including
# checkpoint/resume of the sharded trainer at Workers=1,2,4,8).
race-train:
	$(GO) test -race -run 'BitIdentical|Sharded|TailBatch|ShardEngine|ForwardShard|Checkpoint|Resume|Pipelined' ./internal/nn/

# bench measures the parallel hot path, sweep throughput, batched
# inference and sharded training at 1, 4 and all cores (bit-identical
# physics and weights at every -cpu setting).
bench:
	$(GO) test -run xxx -bench 'HotPath|Sweep|Batched|Training|MatMul' -cpu 1,4,8 -benchtime 2s .

# bench-json records the training / inference / sweep / campaign
# benchmark numbers as JSON (BENCH_PR<N>.json) and diffs them against
# the previous committed file so PRs track the performance trajectory.
# The PR number is auto-detected: one past the newest committed
# BENCH_PR*.json. Override with `make bench-json PR=7` (the diff base
# is then the newest file numbered below PR, so re-running inside one
# PR keeps diffing against the predecessor, not against itself).
BENCH_LATEST := $(shell ls BENCH_PR*.json 2>/dev/null | sed -E 's/.*BENCH_PR([0-9]+)\.json/\1/' | sort -n | tail -1)
PR ?= $(shell expr $(BENCH_LATEST) + 1)
BENCH_PREV = $(shell ls BENCH_PR*.json 2>/dev/null | sed -E 's/.*BENCH_PR([0-9]+)\.json/\1/' | awk '$$1 < $(PR)' | sort -n | tail -1)
bench-json:
	@test -n "$(BENCH_PREV)" || { echo "bench-json: no previous BENCH_PR*.json below PR=$(PR) to diff against"; exit 1; }
	$(GO) test -run xxx -bench 'Training|Batched|Sweep|MatMul' -cpu 1,4,8 -benchtime 1s . \
		| $(GO) run ./tools/benchjson -out BENCH_PR$(PR).json -diff BENCH_PR$(BENCH_PREV).json

# bench-gate asserts the structural performance ratios (batched vs
# per-call inference, tiled vs reference GEMM, sharded vs serial
# training, batched vs per-cell lease claims) in the newest committed
# BENCH_PR*.json stay inside fixed bounds. Ratios between benchmarks
# from the same recording cancel out machine speed, so the gate holds
# on any hardware — it catches a structurally disabled optimization,
# not noise. Runs in CI without re-running the benchmarks.
bench-gate:
	@test -n "$(BENCH_LATEST)" || { echo "bench-gate: no committed BENCH_PR*.json to gate"; exit 1; }
	$(GO) run ./tools/benchjson -gate BENCH_PR$(BENCH_LATEST).json

# smoke-campaign is the CI interrupt/resume check: run a tiny
# multi-method campaign with a journal, truncate the journal to its
# first two cells (exactly what a kill leaves behind), resume, and
# require the bit-exact campaign digest to match the uninterrupted run.
SMOKE_FLAGS = -scan -methods traditional,oracle -scan-v0s 0.2 -scan-vths 0,0.01 \
	-scan-ppc 40 -steps 40 -workers 4
smoke-campaign:
	$(GO) build -o /tmp/dlpic-smoke ./cmd/experiments
	rm -f /tmp/dlpic-smoke-full.jsonl /tmp/dlpic-smoke-part.jsonl
	/tmp/dlpic-smoke $(SMOKE_FLAGS) -journal /tmp/dlpic-smoke-full.jsonl > /tmp/dlpic-smoke-full.out
	head -n 2 /tmp/dlpic-smoke-full.jsonl > /tmp/dlpic-smoke-part.jsonl
	/tmp/dlpic-smoke $(SMOKE_FLAGS) -resume /tmp/dlpic-smoke-part.jsonl > /tmp/dlpic-smoke-resumed.out
	grep '^campaign digest:' /tmp/dlpic-smoke-full.out > /tmp/dlpic-smoke-digest-full
	grep '^campaign digest:' /tmp/dlpic-smoke-resumed.out > /tmp/dlpic-smoke-digest-resumed
	cat /tmp/dlpic-smoke-digest-full
	diff /tmp/dlpic-smoke-digest-full /tmp/dlpic-smoke-digest-resumed

# smoke-train is the CI kill/resume gate for *training*, mirroring
# smoke-campaign one layer down. Part 1 (cmd/train): start a fit with
# -checkpoint, kill -9 it the instant the mid-fit checkpoint lands
# (~half the epochs), resume to the full budget, and require the final
# model bundle to be byte-identical to an uninterrupted run's. Part 2
# (cmd/experiments): kill a DL campaign mid-training the same way,
# resume it (the log shows training picked up from the epoch
# checkpoint or, if the kill raced past training, from the persisted
# bundle) and require the bit-exact campaign digest; then resume the
# now-complete campaign once more and require ZERO training epochs in
# its log — the persisted bundle makes retraining unnecessary.
ST_DIR = /tmp/dlpic-smoke-train
ST_FIT = -data $(ST_DIR)/corpus.ds -arch mlp -hidden 512 -batch 16 -epochs 10
ST_SCAN = -scan -methods mlp -scan-v0s 0.2 -scan-vths 0.01 -steps 30 -workers 2
smoke-train:
	$(GO) build -o $(ST_DIR)/train ./cmd/train
	$(GO) build -o $(ST_DIR)/datagen ./cmd/datagen
	$(GO) build -o $(ST_DIR)/exp ./cmd/experiments
	rm -rf $(ST_DIR)/work && mkdir -p $(ST_DIR)/work
	$(ST_DIR)/datagen -out $(ST_DIR)/corpus.ds -v0s 0.15,0.2 -vths 0 -repeats 1 -steps 60 -every 1 -ppc 30
	# --- part 1: kill cmd/train mid-fit, resume, byte-diff the bundles
	$(ST_DIR)/train $(ST_FIT) -out $(ST_DIR)/work/ref.dlpic 2> $(ST_DIR)/work/ref.log
	$(ST_DIR)/train $(ST_FIT) -out $(ST_DIR)/work/killed.dlpic \
		-checkpoint $(ST_DIR)/work/kill.ckpt -checkpoint-every 5 2> $(ST_DIR)/work/kill.log & \
	pid=$$!; i=0; while [ ! -f $(ST_DIR)/work/kill.ckpt ] && [ $$i -lt 6000 ]; do i=$$((i+1)); sleep 0.01; done; \
	kill -9 $$pid 2>/dev/null || true; wait $$pid 2>/dev/null || true
	test ! -f $(ST_DIR)/work/killed.dlpic # the kill must land before the fit finishes
	$(ST_DIR)/train $(ST_FIT) -out $(ST_DIR)/work/resumed.dlpic \
		-checkpoint $(ST_DIR)/work/kill.ckpt -checkpoint-every 5 -resume 2> $(ST_DIR)/work/resume.log
	grep -q 'resumed training' $(ST_DIR)/work/resume.log # mid-fit resume, or 0-epoch restore if the kill raced past the last epoch
	cmp $(ST_DIR)/work/ref.dlpic $(ST_DIR)/work/resumed.dlpic
	# --- part 2: kill a DL campaign mid-training, resume bit-identically
	$(ST_DIR)/exp $(ST_SCAN) -journal $(ST_DIR)/work/full.jsonl > $(ST_DIR)/work/full.out 2> $(ST_DIR)/work/full.log
	$(ST_DIR)/exp $(ST_SCAN) -journal $(ST_DIR)/work/kill.jsonl > $(ST_DIR)/work/killc.out 2> $(ST_DIR)/work/killc.log & \
	pid=$$!; i=0; while ! ls $(ST_DIR)/work/kill.jsonl.artifacts/*.ckpt >/dev/null 2>&1 && [ $$i -lt 6000 ]; do i=$$((i+1)); sleep 0.01; done; \
	kill -9 $$pid 2>/dev/null || true; wait $$pid 2>/dev/null || true
	$(ST_DIR)/exp $(ST_SCAN) -resume $(ST_DIR)/work/kill.jsonl > $(ST_DIR)/work/res.out 2> $(ST_DIR)/work/res.log
	grep -Eq 'resumed training|reusing persisted bundle' $(ST_DIR)/work/res.log
	# --- part 3: resume the completed campaign — zero training epochs
	$(ST_DIR)/exp $(ST_SCAN) -resume $(ST_DIR)/work/kill.jsonl > $(ST_DIR)/work/res2.out 2> $(ST_DIR)/work/res2.log
	test "$$(grep -cE '^epoch ' $(ST_DIR)/work/res2.log)" = 0
	grep '^campaign digest:' $(ST_DIR)/work/full.out > $(ST_DIR)/work/digest-full
	grep '^campaign digest:' $(ST_DIR)/work/res.out > $(ST_DIR)/work/digest-res
	grep '^campaign digest:' $(ST_DIR)/work/res2.out > $(ST_DIR)/work/digest-res2
	cat $(ST_DIR)/work/digest-full
	diff $(ST_DIR)/work/digest-full $(ST_DIR)/work/digest-res
	diff $(ST_DIR)/work/digest-full $(ST_DIR)/work/digest-res2

# smoke-serve is the CI lifecycle gate for the dlpicd campaign daemon
# (tools/smoke-serve.sh): run A checks submit/dedup/poll/drain over
# HTTP and records the campaign digest; run B SIGKILLs the daemon mid-
# training and requires a restarted daemon over the same data directory
# to resume the job unprompted to the bit-exact same digest, with
# byte-identical persisted model bundles across the two runs.
smoke-serve:
	GO="$(GO)" sh ./tools/smoke-serve.sh

# smoke-dist is the CI chaos gate for distributed campaign execution
# (tools/smoke-dist.sh): a coordinator-mode dlpicd with a 1s lease TTL
# and real dlpicworker processes — one kill -9'd mid-cell, one
# SIGSTOPped past its lease TTL, one injecting deterministic RPC
# faults, plus a kill -9 and restart of the coordinator daemon itself —
# must finish the campaign to the bit-exact serial digest, with each
# cell journaled exactly once and no cell over its retry budget.
smoke-dist:
	GO="$(GO)" sh ./tools/smoke-dist.sh

# docs fails when an exported identifier lacks a doc comment, keeping
# `go doc` usable as the API reference.
docs: vet
	$(GO) run ./tools/lintdoc .

# fmt-check fails (listing offenders) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; test -z "$$out" || { echo "gofmt needed:"; echo "$$out"; exit 1; }

# verify-style is the one style gate, identical for developers and CI:
# gofmt cleanliness plus doc-comment coverage (which runs vet first).
verify-style: fmt-check docs

ci: build vet test
