# Developer and CI entry points. `make ci` is the tier-1 gate.

GO ?= go

.PHONY: all build test vet race bench docs ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the packages with concurrent kernels and the sweep engine
# under the race detector.
race:
	$(GO) test -race ./internal/parallel/ ./internal/interp/ ./internal/mover/ \
		./internal/pic/ ./internal/pic2d/ ./internal/sweep/ ./internal/dataset/ \
		./internal/tensor/ ./internal/vlasov/ ./internal/batch/

# bench measures the parallel hot path, sweep throughput and batched
# inference at 1, 4 and all cores (bit-identical physics at every -cpu
# setting).
bench:
	$(GO) test -run xxx -bench 'HotPath|Sweep|Batched' -cpu 1,4,8 -benchtime 2s .

# docs fails when an exported identifier lacks a doc comment, keeping
# `go doc` usable as the API reference.
docs: vet
	$(GO) run ./tools/lintdoc .

ci: build vet test
