module dlpic

go 1.24
