#!/bin/sh
# smoke-dist: the CI chaos gate for distributed campaign execution.
#
# Phase 0 (reference): run the campaign on a plain daemon — local sweep
# pool, no coordinator — and record its digest.
#
# Chaos run: a coordinator-mode daemon with a 1-second lease TTL and
# real dlpicworker processes, abused in every way the lease protocol
# claims to survive:
#
#   phase 1  worker w1 is kill -9'd mid-cell; its orphaned lease must
#            expire and return the cell to the pool
#   phase 2  worker w2 is SIGSTOPped past its lease TTL (heartbeats
#            stop, the lease expires, the cell is re-leased), then
#            SIGCONTed — its stale completion must be discarded
#   phase 3  the coordinator daemon itself is kill -9'd mid-campaign
#            and restarted over the same data directory and address;
#            the job must resume unprompted from the journal + lease log
#   phase 4  a worker with an injected deterministic RPC fault plan
#            (dropped and discarded responses) joins; the campaign must
#            still finish
#
# DL fleet run (phases 5-7): an MLP campaign through the same lease
# protocol — the model trains in the coordinator, ships to workers as a
# fingerprint-addressed digest-verified bundle, and lands in each
# worker's on-disk cache:
#
#   phase 5  serial MLP reference digest on a plain daemon
#   phase 6  coordinator trains + persists the bundle; worker w5 (its
#            bundle fetches delayed by an injected fault) is kill -9'd
#            mid-bundle-download; the coordinator itself is then
#            kill -9'd and restarted over the same directory — it must
#            reuse the persisted bundle, not retrain
#   phase 7  workers w6 (batched claims) and w7 (dropped bundle fetches)
#            finish the campaign: digest bit-identical to phase 5,
#            training ran exactly once across the whole fleet (epochs in
#            the first coordinator's log only), and at least one cell
#            was served from a worker's bundle cache, not the wire
#
# Acceptance: the distributed digests equal the serial digests
# bit-exactly, the journals hold each cell exactly once, and no cell
# consumed more than its retry budget (attempts <= 3).
#
# No jq dependency: responses are plain JSON extracted with sed.
set -eu

GO=${GO:-go}
DIR=${SD_DIR:-/tmp/dlpic-smoke-dist}
# Cell sizing: steps/ppc chosen so one cell runs a few hundred ms —
# long enough that grant-gated kills land mid-cell, short enough that
# 12 cells keep the gate fast. 6 v0s x 1 vth x 2 methods = 12 cells.
AXES='"v0s":[0.14,0.16,0.18,0.2,0.22,0.24],"vths":[0.01],"steps":800,"ppc":800,"seed":7,"methods":["traditional","oracle"]'
SERIAL_SPEC="{$AXES}"
DIST_SPEC="{$AXES,\"distributed\":true}"
BUDGET=3 # campaign.DefaultMaxAttempts

rm -rf "$DIR"
mkdir -p "$DIR/a" "$DIR/b"
$GO build -o "$DIR/dlpicd" ./cmd/dlpicd
$GO build -o "$DIR/dlpicworker" ./cmd/dlpicworker

field() { # field NAME <<json — extract one string/number JSON field
	sed -n "s/.*\"$1\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p"
}

start_daemon() { # start_daemon DATADIR TAG ADDRSPEC [FLAGS...] -> $ADDR $DPID
	sd_data=$1 sd_tag=$2 sd_addr=$3
	shift 3
	"$DIR/dlpicd" -addr "$sd_addr" -data "$sd_data" -workers 2 "$@" \
		> "$DIR/$sd_tag.out" 2> "$DIR/$sd_tag.log" &
	DPID=$!
	i=0
	until ADDR=$(sed -n 's/^dlpicd listening on \([0-9.:]*\).*/\1/p' "$DIR/$sd_tag.out" | head -1) \
		&& [ -n "$ADDR" ]; do
		i=$((i+1)); [ "$i" -lt 1000 ] || { echo "daemon $sd_tag never listened"; exit 1; }
		sleep 0.01
	done
	i=0
	until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i+1)); [ "$i" -lt 1000 ] || { echo "daemon $sd_tag never became healthy"; exit 1; }
		sleep 0.01
	done
}

start_worker() { # start_worker ID [FLAGS...] -> $WPID, log in $DIR/ID.log
	sw_id=$1
	shift
	"$DIR/dlpicworker" -coordinator "http://$ADDR" -id "$sw_id" -poll 50ms "$@" \
		> /dev/null 2> "$DIR/$sw_id.log" &
	WPID=$!
}

submit() { # submit SPEC OUTFILE -> prints http code, body in OUTFILE
	curl -s -o "$2" -w '%{http_code}' -X POST "http://$ADDR/campaigns" \
		-H 'Content-Type: application/json' -d "$1"
}

wait_log() { # wait_log PATTERN FILE WHAT — poll FILE until PATTERN appears
	i=0
	until grep -q -e "$1" "$2" 2>/dev/null; do
		i=$((i+1)); [ "$i" -lt 3000 ] || { echo "timed out waiting for $3"; exit 1; }
		sleep 0.01
	done
}

wait_done() { # wait_done ID TAG -> final body in $DIR/TAG.status
	i=0
	while :; do
		curl -fsS "http://$ADDR/campaigns/$1" > "$DIR/$2.status" 2>/dev/null || true
		state=$(field state < "$DIR/$2.status")
		case "$state" in
		done) return 0 ;;
		failed) echo "job failed: $(cat "$DIR/$2.status")"; exit 1 ;;
		esac
		i=$((i+1)); [ "$i" -lt 12000 ] || { echo "job $1 never finished ($2)"; exit 1; }
		sleep 0.01
	done
}

# ---- phase 0: serial reference digest ------------------------------------
start_daemon "$DIR/a" a 127.0.0.1:0
code=$(submit "$SERIAL_SPEC" "$DIR/a.sub")
[ "$code" = 202 ] || { echo "serial submit: HTTP $code, want 202"; exit 1; }
id_serial=$(field id < "$DIR/a.sub")
# A distributed spec must be refused without a coordinator.
code=$(submit "$DIST_SPEC" "$DIR/a.reject")
[ "$code" = 400 ] || { echo "distributed submit on a plain daemon: HTTP $code, want 400"; exit 1; }
wait_done "$id_serial" a
digest_serial=$(field digest < "$DIR/a.status")
[ -n "$digest_serial" ] || { echo "serial run produced no digest"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "serial daemon exited non-zero after SIGTERM"; exit 1; }
echo "phase 0: serial digest $digest_serial"

# ---- phase 1: kill -9 a worker mid-cell ----------------------------------
start_daemon "$DIR/b" b1 127.0.0.1:0 -coordinator -lease-ttl 1s
CADDR=$ADDR
code=$(submit "$DIST_SPEC" "$DIR/b.sub")
[ "$code" = 202 ] || { echo "distributed submit: HTTP $code, want 202"; exit 1; }
id=$(field id < "$DIR/b.sub")
[ "$id" != "$id_serial" ] || { echo "distributed flag did not change the job identity"; exit 1; }

start_worker w1
W1=$WPID
wait_log '\-> worker w1' "$DIR/b1.log" "a lease granted to w1"
kill -9 "$W1" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
wait_log 'expired (worker w1' "$DIR/b1.log" "w1's orphaned lease to expire"
echo "phase 1: w1 kill -9'd mid-cell, orphaned lease expired"

# ---- phase 2: SIGSTOP a worker past its lease TTL ------------------------
start_worker w2
W2=$WPID
wait_log '\-> worker w2' "$DIR/b1.log" "a lease granted to w2"
kill -STOP "$W2"
wait_log 'expired (worker w2' "$DIR/b1.log" "w2's lease to expire during SIGSTOP"
kill -CONT "$W2"
echo "phase 2: w2 SIGSTOPped past lease expiry, resumed; stale completion will be discarded"

# ---- phase 3: kill -9 the coordinator daemon, restart over the same dir --
wait_log 'settled (attempts' "$DIR/b1.log" "a settled cell before the coordinator kill"
kill -9 "$DPID" 2>/dev/null || true
wait "$DPID" 2>/dev/null || true
[ ! -f "$DIR/b/$id.result.json" ] || { echo "coordinator kill landed after completion; no crash window"; exit 1; }
start_daemon "$DIR/b" b2 "$CADDR" -coordinator -lease-ttl 1s
echo "phase 3: coordinator kill -9'd mid-campaign, restarted on $ADDR"

# ---- phase 4: fault-injected and replacement workers finish the job ------
start_worker w3 -fault seed=7,drop=0.15,err=0.15
W3=$WPID
start_worker w4
W4=$WPID
wait_done "$id" b
digest_dist=$(field digest < "$DIR/b.status")
[ "$digest_dist" = "$digest_serial" ] || { echo "distributed digest $digest_dist != serial $digest_serial"; exit 1; }
echo "phase 4: campaign finished under faults; digest $digest_dist matches serial"

# ---- acceptance: journal holds each cell once, within the retry budget ---
journal="$DIR/b/$id.jsonl"
[ -f "$journal" ] || { echo "no journal at $journal"; exit 1; }
lines=$(wc -l < "$journal")
[ "$lines" = 12 ] || { echo "journal holds $lines records, want 12 (double-journaled or missing cells)"; exit 1; }
over=$(grep -o '"attempts":[0-9]*' "$journal" | sed 's/.*://' | awk -v b="$BUDGET" '$1 > b' | wc -l)
[ "$over" = 0 ] || { echo "$over cells exceeded the retry budget of $BUDGET"; exit 1; }
grep -q 'expired' "$DIR/b1.log" || { echo "chaos run never exercised a lease expiry"; exit 1; }

kill -TERM "$W2" "$W3" "$W4" 2>/dev/null || true
wait "$W2" "$W3" "$W4" 2>/dev/null || true
kill -TERM "$DPID"
wait "$DPID" || { echo "coordinator daemon exited non-zero after SIGTERM"; exit 1; }

# ---- phase 5: serial MLP reference digest ---------------------------------
# 4 cells (4 v0s x 1 vth x mlp) at tiny scale: training dominates, cell
# execution is quick — exactly the profile bundle shipping exists for.
MLP_AXES='"scale":"tiny","v0s":[0.18,0.2,0.22,0.24],"vths":[0.01],"steps":30,"seed":7,"methods":["mlp"]'
mkdir -p "$DIR/c" "$DIR/d"
start_daemon "$DIR/c" c 127.0.0.1:0
code=$(submit "{$MLP_AXES}" "$DIR/c.sub")
[ "$code" = 202 ] || { echo "serial MLP submit: HTTP $code, want 202"; exit 1; }
id_mlp_serial=$(field id < "$DIR/c.sub")
wait_done "$id_mlp_serial" c
digest_mlp_serial=$(field digest < "$DIR/c.status")
[ -n "$digest_mlp_serial" ] || { echo "serial MLP run produced no digest"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "serial MLP daemon exited non-zero after SIGTERM"; exit 1; }
echo "phase 5: serial MLP digest $digest_mlp_serial"

# ---- phase 6: kill a worker mid-bundle-download, then the coordinator ----
start_daemon "$DIR/d" d1 127.0.0.1:0 -coordinator -lease-ttl 1s
CADDR=$ADDR
code=$(submit "{$MLP_AXES,\"distributed\":true}" "$DIR/d.sub")
[ "$code" = 202 ] || { echo "distributed MLP submit: HTTP $code, want 202"; exit 1; }
id_mlp=$(field id < "$DIR/d.sub")
# The model trains in the coordinator before any lease is granted.
wait_log 'persisted bundle' "$DIR/d1.log" "the coordinator to train and persist the MLP bundle"
# w5's bundle fetches are delayed 5s by an injected fault, holding the
# download window open; the kill -9 lands inside it.
start_worker w5 -methods mlp -cache-dir "$DIR/w5cache" -fault seed=7,bundle.delay=1:5s
W5=$WPID
wait_log 'downloading from coordinator' "$DIR/w5.log" "w5 to start its bundle download"
kill -9 "$W5" 2>/dev/null || true
wait "$W5" 2>/dev/null || true
# Kill the coordinator mid-campaign (no cell has completed) and restart
# it over the same directory and address: the journal brings the job
# back, the bundle store makes retraining unnecessary.
kill -9 "$DPID" 2>/dev/null || true
wait "$DPID" 2>/dev/null || true
start_daemon "$DIR/d" d2 "$CADDR" -coordinator -lease-ttl 1s
wait_log 'reusing persisted bundle' "$DIR/d2.log" "the restarted coordinator to reuse the persisted bundle"
echo "phase 6: w5 kill -9'd mid-bundle-download; coordinator restarted, bundle reused"

# ---- phase 7: a cached fleet finishes the MLP campaign --------------------
start_worker w6 -methods mlp -cache-dir "$DIR/w6cache" -claim-batch 2
W6=$WPID
start_worker w7 -methods mlp -cache-dir "$DIR/w7cache" -fault seed=7,bundle.drop=0.5
W7=$WPID
wait_done "$id_mlp" d
digest_mlp=$(field digest < "$DIR/d.status")
[ "$digest_mlp" = "$digest_mlp_serial" ] || { echo "distributed MLP digest $digest_mlp != serial $digest_mlp_serial"; exit 1; }

# Exactly one training run across the fleet: epochs in the first
# coordinator's log only — the restarted coordinator reused the bundle
# and workers only ever load bundles, they never train.
[ "$(grep -cE '^epoch ' "$DIR/d1.log")" -gt 0 ] || { echo "no training epochs in the first coordinator's log"; exit 1; }
[ "$(grep -cE '^epoch ' "$DIR/d2.log")" = 0 ] || { echo "restarted coordinator retrained instead of reusing the bundle"; exit 1; }
for wlog in w5 w6 w7; do
	[ "$(grep -cE '^epoch ' "$DIR/$wlog.log")" = 0 ] || { echo "worker $wlog trained; workers must only load bundles"; exit 1; }
done
# Each worker downloads the bundle once; later cells on the same worker
# are served from its on-disk cache. 4 cells across 2 workers puts at
# least 2 on one of them, so a cache-hit line must exist.
grep -q 'cache hit' "$DIR/w6.log" "$DIR/w7.log" || { echo "no cell was served from a worker bundle cache"; exit 1; }

journal="$DIR/d/$id_mlp.jsonl"
lines=$(wc -l < "$journal")
[ "$lines" = 4 ] || { echo "MLP journal holds $lines records, want 4"; exit 1; }
over=$(grep -o '"attempts":[0-9]*' "$journal" | sed 's/.*://' | awk -v b="$BUDGET" '$1 > b' | wc -l)
[ "$over" = 0 ] || { echo "$over MLP cells exceeded the retry budget of $BUDGET"; exit 1; }
echo "phase 7: MLP fleet digest matches serial; one training run; cache served"

kill -TERM "$W6" "$W7" 2>/dev/null || true
wait "$W6" "$W7" 2>/dev/null || true
kill -TERM "$DPID"
wait "$DPID" || { echo "MLP coordinator exited non-zero after SIGTERM"; exit 1; }
echo "smoke-dist: OK"
