package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Expectation comments in testdata sources: the word `want` followed by
// one or more Go string literals. Each literal is a substring that one
// diagnostic reported on that line must contain; lines without a want
// comment must produce no diagnostics.
var (
	wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	strRE  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type wantDiag struct {
	file    string
	line    int
	substr  string
	matched bool
}

// collectWants scans every .go file under root for want comments and
// returns one expectation per quoted substring.
func collectWants(t *testing.T, root string) []*wantDiag {
	t.Helper()
	var wants []*wantDiag
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, lit := range strRE.FindAllString(m[1], -1) {
				substr, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, lit, err)
				}
				wants = append(wants, &wantDiag{
					file: filepath.ToSlash(path), line: i + 1, substr: substr,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestTestdataDiagnostics runs the full suite over testdata/src and
// requires an exact bidirectional match: every diagnostic is expected
// by a want comment at its file:line, and every want comment is hit.
func TestTestdataDiagnostics(t *testing.T) {
	root := filepath.Join("testdata", "src")
	set, err := loadPackages(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := runLint(set)
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/src")
	}

	analyzersSeen := map[string]bool{}
	for _, d := range diags {
		analyzersSeen[d.analyzer] = true
		if d.pos.Line <= 0 || d.pos.Column <= 0 {
			t.Errorf("%s: %s: diagnostic without a full position: %s", d.pos, d.analyzer, d.message)
		}
		file := filepath.ToSlash(d.pos.Filename)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == file && w.line == d.pos.Line && strings.Contains(d.message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s: %s: %s", d.pos, d.analyzer, d.message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
	// Every analyzer — and the directive checker guarding the escape
	// hatch — must be exercised by the corpus, so a silently dead
	// analyzer fails the suite.
	for _, a := range analyzers {
		if !analyzersSeen[a.name] {
			t.Errorf("analyzer %q produced no diagnostics over testdata/src", a.name)
		}
	}
	if !analyzersSeen["directive"] {
		t.Error("directive checking produced no diagnostics over testdata/src")
	}
}

// TestRepoLintCleanAndRacePackages type-checks the whole module, which
// is the same work `make lint` does: the tree must lint at zero
// findings, and the derived race-package list must cover the
// concurrency-bearing packages while honouring excludes.
func TestRepoLintCleanAndRacePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module")
	}
	set, err := loadPackages(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags := runLint(set)
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s: %s: %s", d.pos, d.analyzer, d.message)
	}

	pkgs := racePackages(set, map[string]bool{"internal/nn": true})
	got := map[string]bool{}
	for _, p := range pkgs {
		got[p] = true
	}
	// The sanctioned concurrency homes are roots; core and
	// experiments import them transitively.
	for _, p := range []string{
		"./internal/parallel/", "./internal/batch/", "./internal/serve/",
		"./internal/dist/", "./internal/core/", "./internal/experiments/",
	} {
		if !got[p] {
			t.Errorf("race package list is missing %s (got %v)", p, pkgs)
		}
	}
	// Excluded and concurrency-free packages must stay out.
	for _, p := range []string{"./internal/nn/", "./internal/rng/", "./internal/theory/"} {
		if got[p] {
			t.Errorf("race package list wrongly contains %s", p)
		}
	}
}
