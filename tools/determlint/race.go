package main

import (
	"go/ast"
	"sort"
	"strings"
)

// racePackages derives the `make race` package list: every internal
// package that defines raw concurrency (by the raw-concurrency
// analyzer's own classifier — today that is internal/parallel and
// internal/batch) or transitively imports a package that does, minus
// the explicit excludes. The result is the set of packages whose tests
// can exercise concurrent code, printed as ./dir/ patterns for
// `go test -race`.
func racePackages(set *pkgSet, exclude map[string]bool) []string {
	byRel := map[string]*lintPkg{}
	for _, lp := range set.pkgs {
		byRel[lp.rel] = lp
	}
	bearing := map[string]bool{}
	for _, lp := range set.pkgs {
		if definesConcurrency(lp) {
			bearing[lp.rel] = true
		}
	}
	// Propagate over the import graph to a fixpoint: importing a
	// concurrency-bearing package makes a package concurrency-bearing.
	for changed := true; changed; {
		changed = false
		for _, lp := range set.pkgs {
			if bearing[lp.rel] {
				continue
			}
			for _, dep := range lp.pkg.Imports() {
				rel, ok := strings.CutPrefix(dep.Path(), set.modPath+"/")
				if !ok {
					continue
				}
				if bearing[rel] {
					bearing[lp.rel] = true
					changed = true
					break
				}
			}
		}
	}
	var out []string
	for _, lp := range set.pkgs {
		if inInternal(lp.rel) && bearing[lp.rel] && !exclude[lp.rel] {
			out = append(out, "./"+lp.rel+"/")
		}
	}
	sort.Strings(out)
	return out
}

// definesConcurrency reports whether lp's own sources contain a raw
// concurrency construct.
func definesConcurrency(lp *lintPkg) bool {
	for _, f := range lp.files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			if concurrencyConstruct(lp.info, n) != "" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
