package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// rawgoAnalyzer rejects raw concurrency — bare go statements,
// sync.WaitGroup, channel creation/sends/receives/ranges and select —
// everywhere in internal/ except the sanctioned packages below.
// parallel's chunk-ordered primitives (ScatterReduce, OrderedFold,
// ForChunks) are what make results bit-identical at any
// GOMAXPROCS/worker count; batch's inference server is the one
// sanctioned channel protocol; serve is the daemon control plane,
// whose goroutines manage job lifecycles and never touch a physics
// reduction; dist is the lease coordinator/worker protocol, whose
// concurrency schedules cells across processes but never reorders a
// result (the journal and input-order assembly pin that). A bare
// goroutine anywhere else is a reduction whose order nobody pinned.
var rawgoAnalyzer = &analyzer{
	name: "rawgo",
	doc:  "raw concurrency (go, sync.WaitGroup, channels, select) outside the sanctioned packages (internal/parallel, internal/batch, internal/serve, internal/dist)",
	run:  runRawgo,
}

// rawgoAllowed names the packages sanctioned to use raw concurrency
// primitives directly.
var rawgoAllowed = map[string]bool{
	"internal/parallel": true,
	"internal/batch":    true,
	"internal/serve":    true,
	"internal/dist":     true,
}

func runRawgo(p *pass) {
	if !inInternal(p.rel) || rawgoAllowed[p.rel] {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			if what := concurrencyConstruct(p.info, n); what != "" {
				p.reportf(n.Pos(),
					"%s outside the sanctioned concurrency packages: hot-path concurrency must go through the chunk-ordered primitives", what)
			}
			return true
		})
	}
}

// concurrencyConstruct classifies n as a raw concurrency construct,
// returning a description or "" when n is not one. The raw-concurrency
// analyzer reports these; the -race-packages derivation uses the same
// classifier to find the packages that define concurrency.
func concurrencyConstruct(info *types.Info, n ast.Node) string {
	switch v := n.(type) {
	case *ast.GoStmt:
		return "bare go statement"
	case *ast.SelectStmt:
		return "select statement"
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if v.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.ChanType:
		return "channel type"
	case *ast.RangeStmt:
		if tv, ok := info.Types[v.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over a channel"
			}
		}
	case *ast.SelectorExpr:
		if tn, ok := info.Uses[v.Sel].(*types.TypeName); ok &&
			tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
			return "sync.WaitGroup"
		}
	}
	return ""
}
