package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderAnalyzer flags `range` over a map whose body feeds an
// ordered sink: appending to a slice that outlives the loop (and is
// never sorted afterwards), encoding to gob/JSON, writing to a hash or
// any other io.Writer, or fmt.Fprint*-ing. Go randomizes map iteration
// order per run, so each of these turns unordered iteration into
// order-dependent output — the exact failure mode that corrupts
// journal lines, digests and serialized bundles. The canonical fix —
// collect the keys, sort, then iterate — is recognized: an appended
// slice that is later passed to a sort/slices call in the same
// function is not flagged.
var maporderAnalyzer = &analyzer{
	name: "maporder",
	doc:  "range over a map feeding an ordered sink (slice append, encoder, hash, writer)",
	run:  runMaporder,
}

func runMaporder(p *pass) {
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !rangesOverMap(p.info, rs) {
				return true
			}
			checkMapRangeBody(p, f, rs)
			return true
		})
	}
}

// rangesOverMap reports whether rs iterates a map: either its range
// expression has map type, or it is a direct maps.Keys/Values/All call
// (an iterator that inherits the map's randomized order).
func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	if tv, ok := info.Types[rs.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if call, ok := rs.X.(*ast.CallExpr); ok {
		switch pkg, name := pkgFuncCall(info, call); {
		case pkg == "maps" && (name == "Keys" || name == "Values" || name == "All"):
			return true
		}
	}
	return false
}

// checkMapRangeBody walks one map-range body looking for ordered
// sinks. Function literals are not entered: code in a closure runs at
// an unknown time and place, so it is the closure's own context that
// gets analyzed.
func checkMapRangeBody(p *pass, f *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		// Compound float accumulation across iterations: float addition
		// is not associative, so the low bits follow iteration order.
		if as, ok := n.(*ast.AssignStmt); ok {
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range as.Lhs {
					tv, ok := p.info.Types[lhs]
					if !ok || !isFloat(tv.Type) {
						continue
					}
					if obj := rootObj(p.info, lhs); obj != nil && declaredOutside(obj, rs) {
						p.reportf(as.Pos(),
							"order-dependent floating-point accumulation into %q inside range over a map: float folds are not associative, so the result follows iteration order (iterate sorted keys)", obj.Name())
					}
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Builtin append to a slice that outlives the loop.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := p.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				obj := rootObj(p.info, call.Args[0])
				if obj != nil && declaredOutside(obj, rs) && !sortedAfter(p, f, rs.End(), obj) {
					p.reportf(call.Pos(),
						"append to %q inside range over a map: unordered iteration feeding ordered output (iterate sorted keys, or sort %q before it is consumed)",
						obj.Name(), obj.Name())
				}
			}
			return true
		}
		// fmt.Fprint* straight to a writer.
		if pkg, name := pkgFuncCall(p.info, call); pkg == "fmt" &&
			(name == "Fprint" || name == "Fprintf" || name == "Fprintln") {
			p.reportf(call.Pos(),
				"fmt.%s inside range over a map: unordered iteration feeding an ordered writer (iterate sorted keys)", name)
			return true
		}
		// Method sinks: encoders and Write-bearing receivers (hashes,
		// buffers, writers).
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := p.info.Types[sel.X]
		if !ok {
			return true
		}
		name := sel.Sel.Name
		switch {
		case name == "Encode" &&
			(isNamed(recv.Type, "encoding/gob", "Encoder") || isNamed(recv.Type, "encoding/json", "Encoder")):
			p.reportf(call.Pos(),
				"%s.Encode inside range over a map: unordered iteration feeding an encoded stream (iterate sorted keys)",
				namedType(recv.Type).Obj().Name())
		case (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune") &&
			hasWriteMethod(recv.Type):
			p.reportf(call.Pos(),
				"%s to a writer inside range over a map: unordered iteration feeding ordered output (hashes and digests included; iterate sorted keys)", name)
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort or slices call
// after pos within the function enclosing pos — the canonical
// collect-keys-then-sort pattern.
func sortedAfter(p *pass, f *ast.File, pos token.Pos, obj types.Object) bool {
	body := enclosingFuncBody(f, pos)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		pkg, _ := pkgFuncCall(p.info, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// hasWriteMethod reports whether t (or *t) has the io.Writer method
// Write([]byte) (int, error), structurally — hash.Hash, bytes.Buffer,
// strings.Builder, files and real writers all qualify.
func hasWriteMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Write")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	s, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
