package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatfoldAnalyzer flags floating-point compound accumulation
// (+=, -=, *=, /=) into a variable that outlives a channel-receiving
// loop. Deliveries over a channel arrive in completion order, so the
// float fold's association order — and with it the low bits of the
// result — would depend on scheduling. This is precisely the bug class
// parallel.OrderedFold and parallel.ReduceSums exist to prevent:
// produce per-chunk partials and fold them in chunk order instead.
// internal/parallel itself is exempt — it implements the ordered
// reductions (behind mutexes and parked buffers, not bare receives).
var floatfoldAnalyzer = &analyzer{
	name: "floatfold",
	doc:  "order-dependent float accumulation in channel-receiving loops",
	run:  runFloatfold,
}

// floatfoldExempt names the package that implements the ordered
// reductions and therefore owns its accumulation order by construction.
var floatfoldExempt = map[string]bool{
	"internal/parallel": true,
}

func runFloatfold(p *pass) {
	if floatfoldExempt[p.rel] {
		return
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
				if tv, ok := p.info.Types[loop.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						checkFloatAccum(p, n, body)
						return true
					}
				}
			default:
				return true
			}
			if receivesFromChannel(body) {
				checkFloatAccum(p, n, body)
			}
			return true
		})
	}
}

// receivesFromChannel reports whether body contains a channel receive
// or select statement outside nested function literals.
func receivesFromChannel(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkFloatAccum reports compound float assignments in body whose
// target is declared outside loop — an accumulator folded across
// deliveries.
func checkFloatAccum(p *pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			tv, ok := p.info.Types[lhs]
			if !ok || !isFloat(tv.Type) {
				continue
			}
			obj := rootObj(p.info, lhs)
			if obj != nil && declaredOutside(obj, loop) {
				p.reportf(as.Pos(),
					"order-dependent floating-point accumulation into %q in a channel-receiving loop: the fold order follows delivery order; produce per-chunk partials and reduce them with parallel.OrderedFold or parallel.ReduceSums", obj.Name())
			}
		}
		return true
	})
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float32 || b.Kind() == types.Float64)
}
