package main

import (
	"go/ast"
	"strconv"
)

// nondetAnalyzer rejects nondeterminism sources in internal packages.
// Every kernel, the trainer and the campaign engine promise
// bit-identical results from a root seed; a stray math/rand call or a
// wall-clock read folded into digested state breaks that silently.
// Randomness must flow through internal/rng (splittable, snapshotable,
// checkpoint-stable), which is the one package exempt here. Wall-clock
// telemetry that provably stays out of digests (sweep.Result.Elapsed,
// pipeline stage timings) carries a //determlint:ignore nondet
// directive with its justification.
var nondetAnalyzer = &analyzer{
	name: "nondet",
	doc:  "math/rand imports and wall-clock/process-identity reads in internal packages",
	run:  runNondet,
}

// nondetExempt holds the packages allowed to touch raw entropy:
// internal/rng is the deterministic generator everything else must go
// through.
var nondetExempt = map[string]bool{
	"internal/rng": true,
}

// forbiddenImports maps import paths to why they are rejected.
var forbiddenImports = map[string]string{
	"math/rand":    "randomness must flow through internal/rng so every stream derives from the campaign seed",
	"math/rand/v2": "randomness must flow through internal/rng so every stream derives from the campaign seed",
	"crypto/rand":  "cryptographic entropy is nondeterministic by design; derive streams from internal/rng",
}

// wallClockFuncs are the time package reads that leak wall-clock into
// results; process identity reads from os are equally banned.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// processIdentFuncs are os reads that vary per process or host.
var processIdentFuncs = map[string]bool{
	"Getpid": true, "Getppid": true, "Hostname": true, "Environ": true,
}

func runNondet(p *pass) {
	if !inInternal(p.rel) || nondetExempt[p.rel] {
		return
	}
	for _, f := range p.files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				p.reportf(imp.Pos(), "import of %s: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch pkg, name := pkgFuncCall(p.info, call); {
			case pkg == "time" && wallClockFuncs[name]:
				p.reportf(call.Pos(),
					"wall-clock read time.%s: wall-clock must stay out of digested state (keep timing in CLIs, or ignore with a reason if it is pure telemetry)", name)
			case pkg == "os" && processIdentFuncs[name]:
				p.reportf(call.Pos(),
					"process-identity read os.%s: results must not depend on which process computed them", name)
			}
			return true
		})
	}
}
