// Command determlint is the repo's custom static-analysis suite: it
// enforces the determinism and serialization invariants the project
// has already paid to learn, at the source level, before a violation
// can ship. Run through `make lint` (gated in CI) as:
//
//	go run ./tools/determlint ./...
//
// Five analyzers, each encoding one invariant:
//
//	nondet    — math/rand imports and wall-clock/process-identity reads
//	            (time.Now, time.Since, os.Getpid, ...) in internal
//	            packages: randomness must flow through internal/rng and
//	            wall-clock must stay out of anything digested.
//	maporder  — range over a map feeding an ordered sink (append to an
//	            outer slice without a later sort, gob/json Encode, a
//	            hash or io.Writer, fmt.Fprint*): unordered iteration
//	            feeding ordered output.
//	rawgo     — bare go statements, sync.WaitGroup, channels or select
//	            outside the sanctioned concurrency packages (internal/
//	            parallel, internal/batch, internal/serve, internal/
//	            dist): hot-path concurrency must use the chunk-ordered
//	            primitives.
//	floatfold — floating-point +=/-=/*=//= accumulation inside a loop
//	            that receives from a channel: reduction order would
//	            depend on delivery order (use parallel.OrderedFold).
//	gobpin    — a type gob-encoded or -decoded in internal/{nn,core,
//	            pic,dataset,experiments} must be pinned by an init-time
//	            zero-value Encode, keeping process-global gob type ids
//	            (and therefore bundle bytes and fingerprints) stable
//	            across process histories.
//
// Diagnostics are positional (file:line:col: analyzer: message) and
// exit status 1 reports findings. A finding can be suppressed, narrowly,
// with a directive comment naming the analyzer and a reason:
//
//	//determlint:ignore <analyzer> <reason>
//
// which applies only to its own source line and the line directly
// below it. Malformed and unused directives are themselves findings.
//
// The -race-packages mode prints, instead of linting, the internal
// packages the raw-concurrency analyzer identifies as concurrency
// bearing (defining or transitively importing raw concurrency) — the
// Makefile derives the `make race` package list from it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: determlint [flags] [./...]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.name, a.doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
	flag.PrintDefaults()
}

func main() {
	racePkgs := flag.Bool("race-packages", false,
		"print the concurrency-bearing internal packages (for `make race`) instead of linting")
	raceExclude := flag.String("race-exclude", "",
		"comma-separated package dirs to drop from -race-packages output (e.g. internal/nn)")
	flag.Usage = usage
	flag.Parse()

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	root = strings.TrimSuffix(root, "...")
	if root != "/" {
		root = strings.TrimSuffix(root, "/")
	}
	if root == "" {
		root = "."
	}

	set, err := loadPackages(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		os.Exit(2)
	}

	if *racePkgs {
		exclude := map[string]bool{}
		for _, rel := range strings.Split(*raceExclude, ",") {
			if rel = strings.TrimSpace(rel); rel != "" {
				exclude[rel] = true
			}
		}
		for _, dir := range racePackages(set, exclude) {
			fmt.Println(dir)
		}
		return
	}

	diags := runLint(set)
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.pos, d.analyzer, d.message)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "determlint: %d findings\n", n)
		os.Exit(1)
	}
}
