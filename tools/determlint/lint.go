package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// diagnostic is one positional finding: file:line:col, the analyzer
// that produced it, and the message.
type diagnostic struct {
	pos      token.Position
	analyzer string
	message  string
}

// analyzer is one invariant checker. run reports findings through the
// pass it receives.
type analyzer struct {
	name string
	doc  string
	run  func(*pass)
}

// analyzers is the registry, in reporting-priority order. The driver
// runs every entry over every package; scoping lives inside each
// analyzer so the registry stays uniform.
var analyzers = []*analyzer{
	nondetAnalyzer,
	maporderAnalyzer,
	rawgoAnalyzer,
	floatfoldAnalyzer,
	gobpinAnalyzer,
}

// analyzerNames reports whether name is a registered analyzer (used to
// validate ignore directives).
func analyzerNames() map[string]bool {
	m := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		m[a.name] = true
	}
	return m
}

// pass is one analyzer's view of one package.
type pass struct {
	fset *token.FileSet
	rel  string
	// files, pkg, info mirror lintPkg.
	files []*ast.File
	pkg   *types.Package
	info  *types.Info

	current *analyzer
	diags   *[]diagnostic
}

// reportf records a finding of the currently running analyzer at pos.
func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, diagnostic{
		pos:      p.fset.Position(pos),
		analyzer: p.current.name,
		message:  fmt.Sprintf(format, args...),
	})
}

// runLint runs every analyzer over every package, applies the ignore
// directives, and returns the surviving findings sorted by position.
func runLint(set *pkgSet) []diagnostic {
	var diags []diagnostic
	for _, lp := range set.pkgs {
		p := &pass{
			fset: set.fset, rel: lp.rel,
			files: lp.files, pkg: lp.pkg, info: lp.info,
			diags: &diags,
		}
		for _, a := range analyzers {
			p.current = a
			a.run(p)
		}
	}
	diags = dedup(diags)
	diags = applyIgnores(set, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	return diags
}

// dedup drops byte-identical findings (nested map ranges, for example,
// can surface the same sink from two enclosing loops).
func dedup(diags []diagnostic) []diagnostic {
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%s|%s", d.pos, d.analyzer, d.message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// ignoreDirective is one parsed //determlint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	used     bool
}

// directivePrefix introduces the suppression escape hatch:
// //determlint:ignore <analyzer> <reason>. The directive is narrowly
// scoped — it suppresses findings of exactly that analyzer on its own
// line and the line directly below, so one directive cannot silence a
// whole file.
const directivePrefix = "determlint:ignore"

// applyIgnores suppresses findings covered by well-formed ignore
// directives and appends findings for malformed or unused ones, so the
// escape hatch cannot rot silently.
func applyIgnores(set *pkgSet, diags []diagnostic) []diagnostic {
	known := analyzerNames()
	var directives []*ignoreDirective
	var problems []diagnostic
	badf := func(pos token.Pos, format string, args ...any) {
		problems = append(problems, diagnostic{
			pos:      set.fset.Position(pos),
			analyzer: "directive",
			message:  fmt.Sprintf(format, args...),
		})
	}
	for _, lp := range set.pkgs {
		for _, f := range lp.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue // block comments cannot carry directives
					}
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					fields := strings.Fields(text)
					switch {
					case len(fields) < 2 || !known[fields[1]]:
						badf(c.Pos(), "malformed ignore directive: want //determlint:ignore <analyzer> <reason> with a registered analyzer")
					case len(fields) < 3:
						badf(c.Pos(), "ignore directive for %q needs a reason", fields[1])
					default:
						pos := set.fset.Position(c.Pos())
						directives = append(directives, &ignoreDirective{
							file: pos.Filename, line: pos.Line, analyzer: fields[1],
						})
					}
				}
			}
		}
	}
	var out []diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.analyzer == d.analyzer && dir.file == d.pos.Filename &&
				(dir.line == d.pos.Line || dir.line == d.pos.Line-1) {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, dir := range directives {
		if !dir.used {
			out = append(out, diagnostic{
				pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				analyzer: "directive",
				message:  fmt.Sprintf("unused ignore directive for %q: nothing to suppress on this line or the next", dir.analyzer),
			})
		}
	}
	return append(out, problems...)
}

// ---------------------------------------------------------------------------
// Shared analyzer helpers

// inInternal reports whether rel is an internal package directory.
func inInternal(rel string) bool {
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// pkgFuncCall resolves call as pkg.Func(...) through the import table
// and returns the package path and function name ("", "" when call is
// not a package-qualified call).
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// rootObj resolves the variable (or field) an assignable expression
// ultimately names: x, x.f, x[i], (*x) all resolve through x's chain.
// It returns nil when no object can be determined.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// [node.Pos(), node.End()) span — i.e. the object survives across
// iterations of a loop rooted at node.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// enclosingFuncBody returns the body of the innermost function
// (declaration or literal) in f containing pos, or nil.
func enclosingFuncBody(f *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil && body.Pos() <= pos && pos < body.End() {
			if best == nil || (body.Pos() >= best.Pos() && body.End() <= best.End()) {
				best = body
			}
		}
		return true
	})
	return best
}

// namedType unwraps pointers and aliases and returns the named type
// behind t, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
