// Package core exercises the gobpin analyzer: it sits at internal/core,
// one of the serialization-bearing packages, so every type passed to a
// gob Encode or Decode must be pinned by an init-time zero-value
// Encode.
package core

import (
	"encoding/gob"
	"io"
)

// pinned is registered at init, so its uses below are conforming.
type pinned struct{ A int }

// unpinned is encoded but never registered at init.
type unpinned struct{ B int }

// decoded is only ever decoded — decoding registers gob type ids just
// like encoding does (the PR 5 lesson), so it needs pinning too.
type decoded struct{ C int }

func init() {
	_ = gob.NewEncoder(io.Discard).Encode(pinned{})
}

// saveAll encodes one pinned and one unpinned type.
func saveAll(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(pinned{A: 1}); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(unpinned{B: 2}) // want "type unpinned is gob-encoded but never pinned"
}

// loadOne decodes an unpinned type; only the first use per type is
// reported, so loadTwo below stays quiet.
func loadOne(r io.Reader) (decoded, error) {
	var d decoded
	err := gob.NewDecoder(r).Decode(&d) // want "type decoded is gob-decoded but never pinned"
	return d, err
}

// loadTwo is the second use of decoded: same type, no second finding.
func loadTwo(r io.Reader) (decoded, error) {
	var d decoded
	err := gob.NewDecoder(r).Decode(&d)
	return d, err
}
