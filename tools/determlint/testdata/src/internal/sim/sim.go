// Package sim exercises the nondet analyzer: it sits under internal/,
// so randomness and wall-clock reads are findings.
package sim

import (
	crand "crypto/rand" // want "import of crypto/rand"
	"math/rand"         // want "import of math/rand"
	"os"
	"time"
)

// jitter uses the forbidden import; the import line itself carries the
// finding, not every call site.
func jitter() float64 { return rand.Float64() }

// entropy drains crypto/rand, reported at its import.
func entropy(buf []byte) { _, _ = crand.Read(buf) }

// stamp reads the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

// age reads the wall clock through Since.
func age(t time.Time) time.Duration {
	return time.Since(t) // want "wall-clock read time.Since"
}

// pid reads process identity.
func pid() int {
	return os.Getpid() // want "process-identity read os.Getpid"
}

// home is conforming: plain environment reads are not identity reads,
// and time.Time values may flow through signatures freely.
func home() (string, time.Time) { return os.Getenv("HOME"), time.Time{} }
