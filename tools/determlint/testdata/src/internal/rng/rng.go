// Package rng mirrors the real internal/rng: the one internal package
// exempt from the nondet analyzer, because it IS the sanctioned
// randomness seam. Nothing here is a finding.
package rng

import "math/rand"

// reseed touches math/rand legally: internal/rng owns the exemption.
func reseed(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
