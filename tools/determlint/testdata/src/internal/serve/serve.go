// Package serve mirrors the real internal/serve: the daemon control
// plane, sanctioned (with internal/parallel and internal/batch) to use
// raw concurrency directly — its goroutines manage job lifecycles, not
// physics reductions. Nothing in this file is a finding.
package serve

import "sync"

// dispatch runs a queue of jobs on bare goroutines coordinated by a
// WaitGroup, condition variable and channels — the daemon's idiom, and
// exactly what rawgo forbids everywhere outside the sanctioned
// packages.
func dispatch(jobs []func() error) error {
	errs := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			errs <- job()
		}(job)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// waitIdle parks on a condition variable until a counter drains — the
// drain protocol's shape.
func waitIdle(mu *sync.Mutex, cond *sync.Cond, n *int) {
	mu.Lock()
	for *n > 0 {
		cond.Wait()
	}
	mu.Unlock()
}
