// Package quiet exercises the //determlint:ignore escape hatch: its
// narrow two-line scope, and the findings produced by unused and
// malformed directives so the hatch cannot rot silently.
package quiet

import "time"

// stampA is suppressed by a directive on the preceding line.
func stampA() time.Time {
	//determlint:ignore nondet log-only timestamp, never digested
	return time.Now()
}

// stampB is suppressed by a trailing directive on the same line.
func stampB() time.Time {
	return time.Now() //determlint:ignore nondet log-only timestamp, never digested
}

// stampC shows the directive's scope ending: the directive covers its
// own line and the next, so the second read two lines down is still a
// finding.
func stampC() time.Time {
	//determlint:ignore nondet covers only the line below
	_ = time.Now()
	return time.Now() // want "wall-clock read time.Now"
}

//determlint:ignore nondet nothing on this or the next line to suppress // want "unused ignore directive"

//determlint:ignore bogus not a registered analyzer // want "malformed ignore directive"

/* want "needs a reason" */ //determlint:ignore nondet

// clean is conforming code between the directive probes.
func clean() time.Duration { return time.Nanosecond }
