// Package conc exercises the rawgo analyzer: raw concurrency in an
// internal package outside internal/parallel and internal/batch.
package conc

import "sync"

// fanOut demonstrates every rejected construct.
func fanOut(n int) int {
	var wg sync.WaitGroup   // want "sync.WaitGroup outside"
	ch := make(chan int, n) // want "channel type outside"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "bare go statement outside"
			defer wg.Done()
			ch <- i // want "channel send outside"
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch // want "channel receive outside"
	}
	return total
}

// drain shows select and range-over-channel findings. The parameter's
// channel type is reported too: channels must not leak through
// internal APIs outside the sanctioned packages.
func drain(ch chan int, stop chan struct{}) int { // want "channel type outside" "channel type outside"
	total := 0
	select { // want "select statement outside"
	case v := <-ch: // want "channel receive outside"
		total += v
	case <-stop: // want "channel receive outside"
	}
	for v := range ch { // want "range over a channel outside"
		total += v
	}
	return total
}

// serial is conforming: plain loops, mutexes and atomics are fine —
// only scheduling-shaped constructs are findings.
func serial(xs []int) int {
	var mu sync.Mutex
	total := 0
	for _, v := range xs {
		mu.Lock()
		total += v
		mu.Unlock()
	}
	return total
}
