// Package parallel mirrors the real internal/parallel: the sanctioned
// home of raw concurrency (with internal/batch), and the owner of the
// ordered reductions, so neither rawgo nor floatfold report here.
// Nothing in this file is a finding.
package parallel

import "sync"

// reduce fans work out over bare goroutines and folds float results
// from a channel — exactly what is forbidden everywhere else, and
// exactly what this package exists to encapsulate behind chunk-ordered
// primitives.
func reduce(xs []float64) float64 {
	var wg sync.WaitGroup
	ch := make(chan float64, len(xs))
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			ch <- x * x
		}(x)
	}
	wg.Wait()
	close(ch)
	var total float64
	for v := range ch {
		total += v
	}
	return total
}
