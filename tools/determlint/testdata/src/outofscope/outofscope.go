// Package outofscope shows the gobpin analyzer's scoping: gob use in a
// package whose bytes are not load-bearing (outside internal/{nn,core,
// pic,dataset,experiments}) is not a finding.
package outofscope

import (
	"encoding/gob"
	"io"
)

// record is gob-encoded without an init pin — legal here.
type record struct{ X int }

// save encodes without any pinning ceremony.
func save(w io.Writer, r record) error {
	return gob.NewEncoder(w).Encode(r)
}
