// Package maporder exercises the map-order analyzer. It deliberately
// lives outside internal/: the analyzer applies to every package,
// because unordered iteration feeding ordered output corrupts journal
// lines, digests and encoded streams wherever it happens.
package maporder

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"
	"strings"
)

// collectUnsorted leaks map order into a slice that is returned as-is.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over a map"
	}
	return keys
}

// collectSorted is the canonical fix and is not a finding: the
// appended slice is sorted before it is consumed.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortSlice recognizes the sort.Slice form of the fix too.
func collectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// keysIter ranges over maps.Keys, which inherits the map's randomized
// order — same finding as ranging the map directly.
func keysIter(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) {
		out = append(out, k) // want "append to \"out\" inside range over a map"
	}
	return out
}

// gobStream writes map entries straight into an encoded stream.
func gobStream(w io.Writer, m map[string]int) error {
	enc := gob.NewEncoder(w)
	for k := range m {
		if err := enc.Encode(k); err != nil { // want "Encoder.Encode inside range over a map"
			return err
		}
	}
	return nil
}

// jsonStream does the same through encoding/json.
func jsonStream(w io.Writer, m map[string]int) error {
	enc := json.NewEncoder(w)
	for k := range m {
		if err := enc.Encode(k); err != nil { // want "Encoder.Encode inside range over a map"
			return err
		}
	}
	return nil
}

// digest feeds a hash in map order — the digest would differ run to
// run over identical data.
func digest(m map[string]int) [sha256.Size]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want "Write to a writer inside range over a map"
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// report prints rows in map order.
func report(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over a map"
	}
}

// buildString appends to a strings.Builder, a Write-bearing sink.
func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString to a writer inside range over a map"
	}
	return b.String()
}

// meanAbs folds floats across map iterations: float addition is not
// associative, so the low bits follow the randomized order.
func meanAbs(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "order-dependent floating-point accumulation into \"total\""
	}
	return total / float64(len(m))
}

// invert is conforming: writing into another map is order-free.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// tally is conforming: a scalar reduction over a map of ints does not
// depend on iteration order.
func tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// innerScratch is conforming: the appended slice is born and consumed
// inside one iteration, so no cross-iteration order leaks.
func innerScratch(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		f(scratch)
	}
}
