// Package floatproc exercises the floatfold analyzer: floating-point
// accumulation whose fold order follows channel delivery order. It
// lives outside internal/ so the rawgo analyzer stays quiet and the
// float findings stand alone (the analyzer applies everywhere except
// internal/parallel, which implements the ordered reductions).
package floatproc

// sumDeliveries folds receives directly into an accumulator.
func sumDeliveries(ch chan float64) float64 {
	var total float64
	for i := 0; i < 4; i++ {
		total += <-ch // want "order-dependent floating-point accumulation into \"total\""
	}
	return total
}

// sumRange folds a range-over-channel the same way.
func sumRange(ch chan float64) float64 {
	var total float64
	for v := range ch {
		total += v // want "order-dependent floating-point accumulation into \"total\""
	}
	return total
}

// sumSelect folds select results; products are order-dependent too.
func sumSelect(a, b chan float64) float64 {
	var total float64
	for i := 0; i < 4; i++ {
		select {
		case v := <-a:
			total += v // want "order-dependent floating-point accumulation into \"total\""
		case v := <-b:
			total *= v // want "order-dependent floating-point accumulation into \"total\""
		}
	}
	return total
}

// countDeliveries is conforming: integer accumulation is associative,
// so delivery order cannot change the result.
func countDeliveries(ch chan int) int {
	n := 0
	for i := 0; i < 4; i++ {
		n += <-ch
	}
	return n
}

// sumSlice is conforming: no channel in the loop, the fold order is
// the slice order.
func sumSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// perDelivery is conforming: the accumulator is born inside the loop,
// so nothing folds across deliveries.
func perDelivery(ch chan float64, out []float64) {
	for i := range out {
		v := <-ch
		scaled := 0.0
		scaled += v * 2
		out[i] = scaled
	}
}
