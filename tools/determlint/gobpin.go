package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// gobpinAnalyzer enforces the PR 5 lesson: encoding/gob assigns type
// ids from a process-global counter at a type's first encode or
// decode, so the bytes a type serializes to depend on everything the
// process (de)serialized earlier — unless every serialized type is
// pinned by an init-time zero-value Encode in a fixed order. The
// packages whose gob bytes are load-bearing (model bundles and
// training checkpoints that CI byte-diffs, pic.ConfigKey and training
// fingerprints that key journals and bundle stores, persisted corpora)
// must pin every type they pass to gob Encode or Decode in their own
// init.
var gobpinAnalyzer = &analyzer{
	name: "gobpin",
	doc:  "gob-serialized types in serialization-bearing packages must be pinned in an init-time registration",
	run:  runGobpin,
}

// gobpinScope names the packages whose gob output is load-bearing:
// byte-diffed by CI, hashed into fingerprints, or persisted across
// process histories.
var gobpinScope = map[string]bool{
	"internal/nn":          true,
	"internal/core":        true,
	"internal/pic":         true,
	"internal/dataset":     true,
	"internal/experiments": true,
}

// gobUse is one Encode/Decode of a named type outside init.
type gobUse struct {
	obj  types.Object
	pos  token.Pos
	verb string
}

func runGobpin(p *pass) {
	if !gobpinScope[p.rel] {
		return
	}
	pinned := map[types.Object]bool{}
	var uses []gobUse
	for _, f := range p.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				verb, named := gobSerializedType(p.info, call)
				if named == nil {
					return true
				}
				if isInit {
					pinned[named.Obj()] = true
				} else {
					uses = append(uses, gobUse{obj: named.Obj(), pos: call.Pos(), verb: verb})
				}
				return true
			})
		}
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos < uses[j].pos })
	reported := map[types.Object]bool{}
	for _, u := range uses {
		if pinned[u.obj] || reported[u.obj] {
			continue
		}
		reported[u.obj] = true
		p.reportf(u.pos,
			"type %s is gob-%sd but never pinned: add `_ = gob.NewEncoder(io.Discard).Encode(%s{})` to this package's init so its process-global gob type id is assigned in fixed order (see internal/nn/checkpoint.go)",
			u.obj.Name(), u.verb, u.obj.Name())
	}
}

// gobSerializedType returns the verb ("encode"/"decode") and the named
// type that call serializes, when call is (*gob.Encoder).Encode(v) or
// (*gob.Decoder).Decode(&v) of a named type; nil otherwise. Pointers
// are unwrapped, so Decode's &v resolves to v's type.
func gobSerializedType(info *types.Info, call *ast.CallExpr) (string, *types.Named) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	recv, ok := info.Types[sel.X]
	if !ok {
		return "", nil
	}
	var verb string
	switch {
	case sel.Sel.Name == "Encode" && isNamed(recv.Type, "encoding/gob", "Encoder"):
		verb = "encode"
	case sel.Sel.Name == "Decode" && isNamed(recv.Type, "encoding/gob", "Decoder"):
		verb = "decode"
	default:
		return "", nil
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return "", nil
	}
	arg := tv.Type
	if named := namedType(arg); named != nil {
		return verb, named
	}
	return "", nil
}
