package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// lintPkg is one fully type-checked package under the lint root.
type lintPkg struct {
	// rel is the package directory relative to the lint root, slash
	// separated ("." for the root package itself). Analyzer scoping
	// keys off it.
	rel   string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// pkgSet is everything loadPackages produced: the shared FileSet, the
// module path (empty outside a module) and the packages in walk order.
type pkgSet struct {
	fset    *token.FileSet
	modPath string
	pkgs    []*lintPkg
}

// loadPackages parses and type-checks every non-test package under
// root, resolving imports with the go/types source importer (the
// module is deliberately dependency-free, so the standard library
// importer is all this needs). Hidden, vendor and testdata directories
// are skipped. Type-check failures are hard errors: the tree must
// build before it can be linted.
func loadPackages(root string) (*pkgSet, error) {
	set := &pkgSet{fset: token.NewFileSet(), modPath: modulePath(root)}
	imp := importer.ForCompiler(set.fset, "source", nil)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); path != root &&
			(strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, err := parseDir(set.fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		checkPath := rel
		if set.modPath != "" {
			if rel == "." {
				checkPath = set.modPath
			} else {
				checkPath = set.modPath + "/" + rel
			}
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(e error) { typeErrs = append(typeErrs, e) },
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		pkg, _ := conf.Check(checkPath, set.fset, files, info)
		if len(typeErrs) > 0 {
			return fmt.Errorf("typecheck %s: %v", rel, typeErrs[0])
		}
		set.pkgs = append(set.pkgs, &lintPkg{rel: rel, files: files, pkg: pkg, info: info})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return set, nil
}

// parseDir parses the non-test Go files of one directory in name
// order (os.ReadDir sorts, so package loading is deterministic).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// modulePath reads the module path from root/go.mod, or "" when root
// is not a module (the testdata trees, for example).
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
