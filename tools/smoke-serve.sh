#!/bin/sh
# smoke-serve: the CI lifecycle gate for the dlpicd campaign daemon.
#
# Run A (clean lifecycle + dedup): start a daemon on a fresh data
# directory, submit one DL campaign spec three times — all three must
# land on one job id and only the first may create it — follow the job
# to done, record its digest, check a single journal exists, and stop
# the daemon with SIGTERM (clean drain).
#
# Run B (kill -9 + restart resume): fresh directory, same spec; the
# daemon is SIGKILLed as soon as the mid-training checkpoint appears
# (no result file may exist yet), then a second daemon over the same
# directory must pick the job up unprompted, resume it from the journal
# and training artifacts, and land on run A's digest bit-exactly. The
# persisted model bundles of both runs must be byte-identical.
#
# No jq dependency: responses are plain JSON extracted with sed.
set -eu

GO=${GO:-go}
DIR=${SS_DIR:-/tmp/dlpic-smoke-serve}
SPEC='{"scale":"tiny","v0s":[0.2],"vths":[0.01],"steps":30,"seed":7,"methods":["mlp"]}'

rm -rf "$DIR"
mkdir -p "$DIR/a" "$DIR/b"
$GO build -o "$DIR/dlpicd" ./cmd/dlpicd

field() { # field NAME <<json — extract one string/number JSON field
	sed -n "s/.*\"$1\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p"
}

start_daemon() { # start_daemon DATADIR TAG -> $ADDR $DPID
	"$DIR/dlpicd" -addr 127.0.0.1:0 -data "$1" -workers 2 \
		> "$DIR/$2.out" 2> "$DIR/$2.log" &
	DPID=$!
	i=0
	until ADDR=$(sed -n 's/^dlpicd listening on \([0-9.:]*\).*/\1/p' "$DIR/$2.out" | head -1) \
		&& [ -n "$ADDR" ]; do
		i=$((i+1)); [ "$i" -lt 1000 ] || { echo "daemon $2 never listened"; exit 1; }
		sleep 0.01
	done
	i=0
	until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i+1)); [ "$i" -lt 1000 ] || { echo "daemon $2 never became healthy"; exit 1; }
		sleep 0.01
	done
}

submit() { # submit ADDR OUTFILE -> prints http code, body in OUTFILE
	curl -s -o "$2" -w '%{http_code}' -X POST "http://$1/campaigns" \
		-H 'Content-Type: application/json' -d "$SPEC"
}

wait_done() { # wait_done ADDR ID TAG -> final body in $DIR/TAG.status
	i=0
	while :; do
		curl -fsS "http://$1/campaigns/$2" > "$DIR/$3.status"
		state=$(field state < "$DIR/$3.status")
		case "$state" in
		done) return 0 ;;
		failed) echo "job failed: $(cat "$DIR/$3.status")"; exit 1 ;;
		esac
		i=$((i+1)); [ "$i" -lt 12000 ] || { echo "job $2 never finished ($3)"; exit 1; }
		sleep 0.01
	done
}

# ---- run A: clean lifecycle, dedup, drain --------------------------------
start_daemon "$DIR/a" a
code1=$(submit "$ADDR" "$DIR/a.sub1"); id1=$(field id < "$DIR/a.sub1")
code2=$(submit "$ADDR" "$DIR/a.sub2"); id2=$(field id < "$DIR/a.sub2")
code3=$(submit "$ADDR" "$DIR/a.sub3"); id3=$(field id < "$DIR/a.sub3")
[ "$code1" = 202 ] || { echo "first submit: HTTP $code1, want 202"; exit 1; }
[ "$code2" = 200 ] && [ "$code3" = 200 ] || { echo "duplicate submits: $code2/$code3, want 200"; exit 1; }
[ "$id1" = "$id2" ] && [ "$id1" = "$id3" ] || { echo "ids diverged: $id1 $id2 $id3"; exit 1; }
wait_done "$ADDR" "$id1" a
digest_a=$(field digest < "$DIR/a.status")
[ -n "$digest_a" ] || { echo "run A produced no digest"; exit 1; }
[ "$(ls "$DIR"/a/*.jsonl | wc -l)" = 1 ] || { echo "duplicate submissions grew extra journals"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "daemon A exited non-zero after SIGTERM"; exit 1; }
echo "run A: digest $digest_a, one journal, clean drain"

# ---- run B: kill -9 mid-training, restart resumes ------------------------
start_daemon "$DIR/b" b1
code=$(submit "$ADDR" "$DIR/b.sub"); idb=$(field id < "$DIR/b.sub")
[ "$code" = 202 ] || { echo "run B submit: HTTP $code"; exit 1; }
[ "$idb" = "$id1" ] || { echo "run B id $idb != run A id $id1 (content addressing broke)"; exit 1; }
i=0
until ls "$DIR"/b/bundles/*.ckpt >/dev/null 2>&1; do
	i=$((i+1)); [ "$i" -lt 6000 ] || { echo "training checkpoint never appeared"; exit 1; }
	sleep 0.01
done
kill -9 "$DPID" 2>/dev/null || true
wait "$DPID" 2>/dev/null || true
[ ! -f "$DIR/b/$idb.result.json" ] || { echo "kill -9 landed after completion; no crash window"; exit 1; }

start_daemon "$DIR/b" b2 # same directory: the job must resume unprompted
wait_done "$ADDR" "$idb" b
digest_b=$(field digest < "$DIR/b.status")
[ "$digest_b" = "$digest_a" ] || { echo "resumed digest $digest_b != reference $digest_a"; exit 1; }
for bundle in "$DIR"/a/bundles/*.dlpic; do
	cmp "$bundle" "$DIR/b/bundles/$(basename "$bundle")" \
		|| { echo "bundle $(basename "$bundle") differs across runs"; exit 1; }
done
kill -TERM "$DPID"
wait "$DPID" || { echo "daemon B exited non-zero after SIGTERM"; exit 1; }
echo "run B: killed -9 mid-training, restart resumed to digest $digest_b; bundles byte-identical"
echo "smoke-serve: OK"
