package main

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Expectation comments in testdata sources: `want "substring"`, where
// the substring must appear in a report line anchored to that line or
// the line directly below (const/var specs treat trailing comments as
// documentation, so their wants sit on the group's opening line).
var (
	wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	strRE  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

type wantLine struct {
	file    string
	line    int
	substr  string
	matched bool
}

func collectWants(t *testing.T, root string) []*wantLine {
	t.Helper()
	var wants []*wantLine
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, lit := range strRE.FindAllString(m[1], -1) {
				substr, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, lit, err)
				}
				wants = append(wants, &wantLine{
					file: filepath.ToSlash(path), line: i + 1, substr: substr,
				})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// reportPos splits a lintdoc report line ("file:line: message") into
// its file, line and message parts.
func reportPos(t *testing.T, report string) (string, int, string) {
	t.Helper()
	parts := strings.SplitN(report, ":", 3)
	if len(parts) != 3 {
		t.Fatalf("malformed report line %q", report)
	}
	line, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatalf("malformed line number in report %q: %v", report, err)
	}
	return filepath.ToSlash(parts[0]), line, strings.TrimSpace(parts[2])
}

// TestTestdataReports requires an exact bidirectional match between
// run's report lines over testdata/src and the want comments there.
func TestTestdataReports(t *testing.T) {
	root := filepath.Join("testdata", "src")
	reports, err := run(root)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no want comments found under testdata/src")
	}
	for _, r := range reports {
		file, line, msg := reportPos(t, r)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == file && (w.line == line || w.line == line-1) &&
				strings.Contains(msg, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected report: %s", r)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a report containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// TestRepoDocsClean mirrors `make docs`: the repository itself must
// have no undocumented exported identifiers.
func TestRepoDocsClean(t *testing.T) {
	reports, err := run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		t.Errorf("repo is not docs-clean: %s", r)
	}
}

// TestRunErrorsOnUnparsableFile pins the exit-2 path: a syntactically
// broken file is a hard error, not a silent skip.
func TestRunErrorsOnUnparsableFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(dir); err == nil {
		t.Fatal("run succeeded on an unparsable file")
	} else if !strings.Contains(err.Error(), "broken.go") {
		t.Fatalf("error does not name the broken file: %v", err)
	}
}

// TestWalkSkipsNestedTestdata pins the walk's pruning: testdata,
// vendor and hidden directories under the root are not checked.
func TestWalkSkipsNestedTestdata(t *testing.T) {
	dir := t.TempDir()
	undoc := []byte("package skipme\n\nfunc Exported() {}\n")
	for _, sub := range []string{"testdata", "vendor", ".hidden"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "skipme.go"), undoc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := run(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("pruned directories were checked: %v", reports)
	}
}
