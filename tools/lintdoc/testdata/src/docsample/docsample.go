// Package docsample exercises lintdoc: each want comment names the
// substring of the report line that must fire on that line, and lines
// without a want comment must stay silent.
package docsample

// Documented is exported and documented — no finding.
func Documented() {}

func Undocumented() {} // want "function Undocumented has no doc comment"

func internal() {} // unexported: not API, no finding

// Widget is a documented exported type.
type Widget struct{}

// Name is documented.
func (Widget) Name() string { return "widget" }

func (Widget) Kind() string { return "widget" } // want "method Widget.Kind has no doc comment"

type Gadget struct{} // want "type Gadget has no doc comment"

type helper struct{}

func (helper) Exported() {} // method on an unexported type: not API, no finding

// Grouped constants share the declaration's doc comment.
const (
	First  = 1
	Second = 2
)

// A trailing comment on a const or var spec counts as documentation
// (see Trailing below), so the undocumented cases below carry their
// want on the group's opening line — the harness accepts the line
// above — and a blank line keeps this comment from becoming group doc.

const ( // want "const Bare has no doc comment"
	Bare = 3
)

var ( // want "var Loose has no doc comment"
	Loose int
)

// Covered has a declaration doc comment.
var Covered int

var Trailing int // a trailing line comment counts as documentation
