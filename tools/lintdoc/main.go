// Command lintdoc fails (exit 1) when an exported identifier in the
// repository lacks a doc comment, keeping `go doc` output usable as the
// API reference. It checks top-level functions, methods on exported
// types, and type/const/var declarations in every non-test Go file
// under the given root (default "."), skipping vendored and hidden
// directories. Run through `make docs`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	missing, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintdoc:", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Printf("lintdoc: %d exported identifiers missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// run walks the tree under root and returns one report line per
// undocumented exported identifier, in walk order.
func run(root string) ([]string, error) {
	var missing []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		missing = append(missing, checkFile(fset, file)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return missing, nil
}

// checkFile returns one report line per undocumented exported
// identifier in file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv := receiverType(d); recv != "" {
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
			} else {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped declaration covers
					// its members; otherwise each exported member
					// needs its own.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverType returns the bare receiver type name of a method ("" for
// plain functions), unwrapping pointers and generics.
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
