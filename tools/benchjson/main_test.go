package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchStream is a realistic `go test -bench` transcript: headers,
// benchmarks with and without -benchmem columns, GOMAXPROCS suffixes,
// and noise lines the parser must ignore.
const benchStream = `goos: linux
goarch: amd64
pkg: dlpic
cpu: Imaginary CPU @ 2.40GHz
BenchmarkTraining/mlp-4         	      10	 123456789 ns/op
BenchmarkSweep/percall-16       	     100	   2000000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkBatched/batch=64-8     	     500	    150000.5 ns/op
some unrelated log line
PASS
ok  	dlpic	42.000s
`

// runTool invokes run with captured streams.
func runTool(t *testing.T, argv []string, stdin string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(argv, strings.NewReader(stdin), &out, &errw)
	return code, out.String(), errw.String()
}

// parseOut decodes the tool's JSON document.
func parseOut(t *testing.T, s string) benchFile {
	t.Helper()
	var f benchFile
	if err := json.Unmarshal([]byte(s), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, s)
	}
	return f
}

// TestParseStream pins the parser: headers captured, every benchmark
// line extracted with its optional -benchmem columns, noise ignored.
func TestParseStream(t *testing.T) {
	code, stdout, _ := runTool(t, nil, benchStream)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	f := parseOut(t, stdout)
	if f.GoOS != "linux" || f.GoArch != "amd64" || f.Pkg != "dlpic" || !strings.Contains(f.CPU, "Imaginary") {
		t.Fatalf("headers wrong: %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	b0 := f.Benchmarks[0]
	if b0.Name != "Training/mlp-4" || b0.Iterations != 10 || b0.NsPerOp != 123456789 {
		t.Fatalf("benchmark 0 wrong: %+v", b0)
	}
	if b0.BPerOp != 0 || b0.AllocsPerOp != 0 {
		t.Fatalf("benchmark 0 has phantom benchmem columns: %+v", b0)
	}
	b1 := f.Benchmarks[1]
	if b1.Name != "Sweep/percall-16" || b1.BPerOp != 2048 || b1.AllocsPerOp != 12 {
		t.Fatalf("benchmark 1 wrong: %+v", b1)
	}
	if b2 := f.Benchmarks[2]; b2.NsPerOp != 150000.5 {
		t.Fatalf("fractional ns/op lost: %+v", b2)
	}
}

// TestEmptyStreamEmitsEmptyList pins that no benchmarks still produce
// a valid document with an empty (not null) benchmarks array.
func TestEmptyStreamEmitsEmptyList(t *testing.T) {
	code, stdout, _ := runTool(t, nil, "PASS\n")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, `"benchmarks": []`) {
		t.Fatalf("null instead of empty benchmarks array:\n%s", stdout)
	}
}

// TestFailLineFailsRun: a FAIL anywhere in the stream exits 1 — the
// numbers of a failing run must not be committed silently.
func TestFailLineFailsRun(t *testing.T) {
	code, _, stderr := runTool(t, nil, "FAIL\tdlpic\t1.0s\n")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "reported FAIL") {
		t.Fatalf("missing FAIL report:\n%s", stderr)
	}
}

// TestOutFile writes the document to -out and reports the count.
func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, stdout, stderr := runTool(t, []string{"-out", path}, benchStream)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if stdout != "" {
		t.Fatalf("stdout not empty with -out: %q", stdout)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f := parseOut(t, string(buf)); len(f.Benchmarks) != 3 {
		t.Fatalf("file holds %d benchmarks", len(f.Benchmarks))
	}
	if !strings.Contains(stderr, "wrote 3 benchmarks") {
		t.Fatalf("missing write report:\n%s", stderr)
	}
}

// TestDiffReporting pins the -diff stderr contract: shared names get a
// delta line, new names a "+ ... (new)", vanished ones a "- ...
// (removed)".
func TestDiffReporting(t *testing.T) {
	dir := t.TempDir()
	prev := filepath.Join(dir, "prev.json")
	prevDoc := benchFile{Benchmarks: []benchResult{
		{Name: "Training/mlp-4", Iterations: 10, NsPerOp: 100000000},
		{Name: "Gone/old-1", Iterations: 5, NsPerOp: 777},
	}}
	buf, err := json.MarshalIndent(prevDoc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(prev, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runTool(t, []string{"-diff", prev}, benchStream)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr)
	}
	for _, want := range []string{
		"diff against " + prev,
		"Training/mlp-4",
		"(+23.5%)", // 100000000 -> 123456789
		"+ Sweep/percall-16",
		"(new)",
		"- Gone/old-1",
		"(removed)",
	} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("diff output missing %q:\n%s", want, stderr)
		}
	}
}

// TestDiffMissingPrevWarnsWithoutFailing: the diff is informational —
// a missing or malformed previous file must warn and exit 0 (the new
// numbers were already written).
func TestDiffMissingPrevWarnsWithoutFailing(t *testing.T) {
	code, _, stderr := runTool(t, []string{"-diff", filepath.Join(t.TempDir(), "nope.json")}, benchStream)
	if code != 0 {
		t.Fatalf("missing prev failed the run: %d", code)
	}
	if !strings.Contains(stderr, "diff (skipped)") {
		t.Fatalf("missing skip warning:\n%s", stderr)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runTool(t, []string{"-diff", bad}, benchStream)
	if code != 0 {
		t.Fatalf("malformed prev failed the run: %d", code)
	}
	if !strings.Contains(stderr, "diff (skipped)") {
		t.Fatalf("missing skip warning for malformed prev:\n%s", stderr)
	}
}

// TestBadFlagExitsTwo pins flag errors to the conventional exit 2.
func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runTool(t, []string{"-definitely-not-a-flag"}, ""); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// gateFile writes a benchmark JSON whose ns/op values come from the
// given name->ns map, returning its path.
func gateFile(t *testing.T, ns map[string]float64) string {
	t.Helper()
	doc := benchFile{Benchmarks: []benchResult{}}
	for name, v := range ns {
		doc.Benchmarks = append(doc.Benchmarks, benchResult{Name: name, Iterations: 1, NsPerOp: v})
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// healthyGateNs builds ns/op values that satisfy every gate rule with
// room to spare: each rule's numerator sits at half its bound times
// the denominator.
func healthyGateNs() map[string]float64 {
	ns := make(map[string]float64, 2*len(gateRules))
	for _, r := range gateRules {
		ns[r.den] = 1000
		ns[r.num] = 1000 * r.max / 2
	}
	return ns
}

// TestGatePasses: a file whose ratios are inside every bound reports
// one ok line per rule and exits 0.
func TestGatePasses(t *testing.T) {
	path := gateFile(t, healthyGateNs())
	code, stdout, stderr := runTool(t, []string{"-gate", path}, "stdin must be ignored in gate mode")
	if code != 0 {
		t.Fatalf("exit %d\n%s%s", code, stdout, stderr)
	}
	if n := strings.Count(stdout, "\n  ok   "); n != len(gateRules) {
		t.Fatalf("%d ok lines, want %d:\n%s", n, len(gateRules), stdout)
	}
	if strings.Contains(stdout, "FAIL") {
		t.Fatalf("unexpected FAIL in passing gate:\n%s", stdout)
	}
}

// TestGateViolationFails: one ratio past its bound fails the gate, and
// the report names the offending rule with its actual ratio.
func TestGateViolationFails(t *testing.T) {
	ns := healthyGateNs()
	r := gateRules[0]
	ns[r.num] = ns[r.den] * r.max * 3 // ratio = 3x the bound
	code, stdout, stderr := runTool(t, []string{"-gate", gateFile(t, ns)}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL "+r.label) && !strings.Contains(stdout, "FAIL") {
		t.Fatalf("missing FAIL line:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 of") || !strings.Contains(stderr, "violated") {
		t.Fatalf("missing violation summary:\n%s", stderr)
	}
}

// TestGateMissingBenchmarkFails: a rule whose benchmark vanished from
// the file (e.g. renamed) must fail the gate, not silently skip.
func TestGateMissingBenchmarkFails(t *testing.T) {
	ns := healthyGateNs()
	delete(ns, gateRules[len(gateRules)-1].num)
	code, stdout, _ := runTool(t, []string{"-gate", gateFile(t, ns)}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "not in file") {
		t.Fatalf("missing benchmark not reported:\n%s", stdout)
	}
}

// TestGateMissingFileFails: unlike -diff, the gate is a CI check — an
// unreadable file is a hard failure.
func TestGateMissingFileFails(t *testing.T) {
	code, _, stderr := runTool(t, []string{"-gate", filepath.Join(t.TempDir(), "nope.json")}, "")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "gate") {
		t.Fatalf("missing gate error:\n%s", stderr)
	}
}

// TestGateRulesAgainstCommittedFile runs the real rules against the
// newest committed BENCH_PR*.json that contains the lease-dispatch
// sub-benchmarks — the same invocation `make bench-gate` performs in
// CI — so a bounds/recording mismatch is caught at `go test` time.
func TestGateRulesAgainstCommittedFile(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_PR*.json"))
	if err != nil || len(matches) == 0 {
		t.Skipf("no committed BENCH_PR*.json (err %v)", err)
	}
	// Glob returns lexical order; pick the numerically newest.
	newest, best := "", -1
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_PR%d.json", &n); err == nil && n > best {
			newest, best = m, n
		}
	}
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		names[b.Name] = true
	}
	if !names["Sweep_DistLeaseDispatch/k1"] {
		t.Skipf("%s predates the k1/k8 lease-dispatch benchmarks", newest)
	}
	code, stdout, stderr := runTool(t, []string{"-gate", newest}, "")
	if code != 0 {
		t.Fatalf("gate fails on committed %s:\n%s%s", newest, stdout, stderr)
	}
}
