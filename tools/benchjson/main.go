// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark numbers can be
// committed per PR (BENCH_PR3.json, BENCH_PR4.json, ...) and diffed by
// later ones.
//
// Usage:
//
//	go test -run xxx -bench 'Training|Batched|Sweep' -cpu 1,4,8 . | \
//	    go run ./tools/benchjson -out BENCH_PR4.json -diff BENCH_PR3.json
//
// With -diff OLD.json, a per-benchmark comparison against the previous
// committed file is printed to stderr after the new file is written:
// ns/op delta percentages for names present in both, plus the names
// that appeared or disappeared. The diff is informational — it never
// fails the run — because benchmark identity is matched on the raw
// name, and hardware differences between recording machines dominate
// small deltas.
//
// Benchmark names are recorded verbatim, including the trailing -P
// GOMAXPROCS suffix Go appends for P > 1: a sub-benchmark whose own
// name ends in "-<number>" (e.g. percall-16 at -cpu 1) is textually
// indistinguishable from a GOMAXPROCS suffix, so any splitting would
// corrupt identities — the raw string is the only unambiguous key to
// diff against. ns/op, B/op and allocs/op become numbers. Unrecognized
// lines are ignored, so the tool is safe to feed the whole `go test`
// stream.
//
// With -gate FILE the tool is a standalone CI check instead of a
// converter: it loads the committed benchmark JSON and asserts the
// repo's structural performance ratios (batched inference vs per-call,
// tiled GEMM vs reference, sharded training vs serial, batched lease
// claims vs per-cell) stay inside fixed bounds. Ratios between
// benchmarks recorded in the same run cancel out machine speed, so the
// gate is meaningful on any hardware — unlike absolute ns/op, which
// only reflect whichever machine recorded the file. Each rule keys on
// the -cpu 1 rows (no GOMAXPROCS suffix); a missing benchmark fails
// the gate, so a renamed benchmark cannot silently skip its check.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchResult struct {
	// Name is the raw benchmark name from the output line (GOMAXPROCS
	// suffix included, see the package comment).
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type benchFile struct {
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole tool behind an injectable command line and streams,
// returning the process exit code: parse the bench stream, write the
// JSON document, optionally diff against a previous one, and fail (1)
// on a FAIL line in the stream or an I/O error.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default stdout)")
	diff := fs.String("diff", "", "previous benchmark JSON to diff the new numbers against (report to stderr)")
	gate := fs.String("gate", "", "committed benchmark JSON to gate structural ns/op ratios against (standalone mode, stdin ignored)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *gate != "" {
		return runGate(stdout, stderr, *gate)
	}
	file := benchFile{Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	failed := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stderr, line) // echo so the run stays visible
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			file.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			file.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		file.Benchmarks = append(file.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson: read:", err)
		return 1
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "" {
		stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson: write:", err)
		return 1
	} else {
		fmt.Fprintf(stderr, "benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
	}
	if *diff != "" {
		// The diff is informational only (see package doc): a missing or
		// malformed previous file warns without failing the run — the
		// new numbers were already written.
		if err := printDiff(stderr, *diff, file); err != nil {
			fmt.Fprintln(stderr, "benchjson: diff (skipped):", err)
		}
	}
	if failed {
		fmt.Fprintln(stderr, "benchjson: benchmark run reported FAIL")
		return 1
	}
	return 0
}

// printDiff compares the freshly parsed benchmarks against a previously
// committed file, reporting ns/op deltas for shared names and listing
// added/removed ones.
func printDiff(w io.Writer, prevPath string, cur benchFile) error {
	buf, err := os.ReadFile(prevPath)
	if err != nil {
		return err
	}
	var prev benchFile
	if err := json.Unmarshal(buf, &prev); err != nil {
		return fmt.Errorf("%s: %w", prevPath, err)
	}
	old := make(map[string]benchResult, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		old[b.Name] = b
	}
	fmt.Fprintf(w, "\nbenchjson: diff against %s (%d old, %d new benchmarks)\n",
		prevPath, len(prev.Benchmarks), len(cur.Benchmarks))
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		p, ok := old[b.Name]
		if !ok {
			fmt.Fprintf(w, "  + %-60s %12.0f ns/op (new)\n", b.Name, b.NsPerOp)
			continue
		}
		delta := 0.0
		if p.NsPerOp > 0 {
			delta = 100 * (b.NsPerOp - p.NsPerOp) / p.NsPerOp
		}
		fmt.Fprintf(w, "    %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			b.Name, p.NsPerOp, b.NsPerOp, delta)
	}
	for _, b := range prev.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  - %-60s %12.0f ns/op (removed)\n", b.Name, b.NsPerOp)
		}
	}
	return nil
}

// gateRule is one structural ratio assertion: ns/op of benchmark num
// divided by ns/op of benchmark den must stay at or below max. Names
// are the -cpu 1 rows (no GOMAXPROCS suffix), so every rule compares
// two numbers from the same machine and the bound survives hardware
// changes.
type gateRule struct {
	label    string // what the ratio means, for the report
	num, den string // benchmark names at -cpu 1
	max      float64
}

// gateRules pins the structural wins the repo's optimizations claim.
// Bounds are deliberately loose against the recorded ratios (noted per
// rule) — the gate catches a structural regression (an optimization
// silently disabled or inverted), not benchmark noise.
var gateRules = []gateRule{
	// Batched DL inference amortizes forward passes across the sweep;
	// recorded ratio ~0.09.
	{"batched vs per-call DL sweep", "Sweep_DLBatched", "Sweep_DLPerCall", 0.5},
	// Tiled GEMM must not lose to the reference loops at the blocked
	// sizes; recorded ratios 0.63–0.87. Small shapes are too noisy to
	// gate, so only the 512³ rows are pinned.
	{"tiled vs reference GEMM (NN)", "MatMul_NN/512x512x512/tiled", "MatMul_NN/512x512x512/ref", 1.0},
	{"tiled vs reference GEMM (NT)", "MatMul_NT/512x512x512/tiled", "MatMul_NT/512x512x512/ref", 1.0},
	{"tiled vs reference GEMM (TN)", "MatMul_TN/512x512x512/tiled", "MatMul_TN/512x512x512/ref", 1.0},
	// Sharded training pays a determinism tax (fixed shard boundaries,
	// deterministic reduction) but must stay in the same ballpark as
	// serial; recorded ratio ~1.18.
	{"sharded vs serial training fit", "Training_ShardedFit/sharded-w4", "Training_ShardedFit/serial", 2.0},
	// Batched lease claims exist to cut per-cell RPC overhead; k=8 must
	// not cost more than k=1 per campaign. Recorded ratio ~0.87.
	{"batched vs per-cell lease claims", "Sweep_DistLeaseDispatch/k8", "Sweep_DistLeaseDispatch/k1", 1.0},
}

// runGate loads a committed benchmark JSON and checks every gateRule,
// reporting each ratio against its bound. Any violated rule or missing
// benchmark name fails the gate (exit 1).
func runGate(stdout, stderr io.Writer, path string) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson: gate:", err)
		return 1
	}
	var file benchFile
	if err := json.Unmarshal(buf, &file); err != nil {
		fmt.Fprintf(stderr, "benchjson: gate: %s: %v\n", path, err)
		return 1
	}
	ns := make(map[string]float64, len(file.Benchmarks))
	for _, b := range file.Benchmarks {
		ns[b.Name] = b.NsPerOp
	}
	fmt.Fprintf(stdout, "benchjson: gating %d structural ratios from %s\n", len(gateRules), path)
	bad := 0
	for _, r := range gateRules {
		num, okN := ns[r.num]
		den, okD := ns[r.den]
		switch {
		case !okN || !okD:
			missing := r.num
			if okN {
				missing = r.den
			}
			fmt.Fprintf(stdout, "  FAIL %-36s benchmark %q not in file\n", r.label, missing)
			bad++
		case den <= 0:
			fmt.Fprintf(stdout, "  FAIL %-36s %s has non-positive ns/op %v\n", r.label, r.den, den)
			bad++
		case num/den > r.max:
			fmt.Fprintf(stdout, "  FAIL %-36s %s / %s = %.3f > %.2f\n", r.label, r.num, r.den, num/den, r.max)
			bad++
		default:
			fmt.Fprintf(stdout, "  ok   %-36s %s / %s = %.3f <= %.2f\n", r.label, r.num, r.den, num/den, r.max)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "benchjson: gate: %d of %d ratio bounds violated\n", bad, len(gateRules))
		return 1
	}
	return 0
}
